"""Replaying a trace through the simulator.

:class:`TraceReplayWorkload` drives the existing transport stack from any
time-ordered :class:`~repro.traffic.events.TraceEvent` stream: ``flow``
events become TCP transfers (exactly what ``RequestWorkload`` issues),
``stream`` events become paced UDP streams.  The stream is consumed
**lazily, one event ahead** — the next event is pulled only inside the
previous event's callback — so replaying a million-flow trace holds O(1)
events in memory and, just as importantly, preserves the RNG draw order of
generator-backed streams (draws happen at the same points of the event
loop the pre-trace workload made them, which keeps legacy runs
byte-for-byte reproducible; see ``repro.workload.generators``).

Host mapping: ``group="bundle"`` events run between the ``servers`` and
``clients`` pools (through the sendbox), ``group="cross"`` events between
``cross_senders`` and ``cross_receivers`` (beyond it); ``src``/``dst``
index the pools modulo their size, so a trace recorded against a wider
site still replays on a narrow one.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.cc import make_window_cc
from repro.net.node import Host
from repro.obs.collect import span, timed_iter
from repro.net.packet import PacketFactory
from repro.net.simulator import Simulator
from repro.traffic.events import TraceEvent, TraceFormatError
from repro.transport.flow import FlowRecord, TcpFlow
from repro.transport.udp import PacedUdpStream

#: A replay source: an event iterable (times are trace-relative, offset by
#: the start time), or a factory called with the start time that yields
#: events at *absolute* simulated times (what RequestWorkload uses to keep
#: float arithmetic identical to its pre-trace implementation).
EventSource = Union[Iterable[TraceEvent], Callable[[float], Iterable[TraceEvent]]]


class TraceReplayWorkload:
    """Drive the simulator from a trace (see the module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        servers: Sequence[Host],
        clients: Sequence[Host],
        *,
        events: EventSource,
        endhost_cc: str = "cubic",
        endhost_cc_factory: Optional[Callable[[], object]] = None,
        cross_senders: Sequence[Host] = (),
        cross_receivers: Sequence[Host] = (),
        classify: Optional[Callable[[int], int]] = None,
        mss: int = 1500,
        stream_packet_size: int = 1200,
    ) -> None:
        if not servers or not clients:
            raise ValueError("need at least one server and one client")
        self.sim = sim
        self.factory = factory
        self.servers = list(servers)
        self.clients = list(clients)
        self.cross_senders = list(cross_senders)
        self.cross_receivers = list(cross_receivers)
        self.endhost_cc = endhost_cc
        self.endhost_cc_factory = endhost_cc_factory
        self.classify = classify
        self.mss = mss
        self.stream_packet_size = stream_packet_size

        self._source = events
        self._events: Optional[Iterator[TraceEvent]] = None
        self._absolute_times = callable(events)
        self._running = False
        self._start_time = 0.0
        self._last_time: Optional[float] = None

        self.flows: List[TcpFlow] = []
        self.streams: List[PacedUdpStream] = []
        self.completed_records: List[FlowRecord] = []
        self._flows_issued = 0
        self._streams_started = 0

    # -- lifecycle --------------------------------------------------------

    def start(self, at: float = 0.0) -> "TraceReplayWorkload":
        """Begin replaying at simulated time ``at`` (events offset from it)."""
        if self._events is not None:
            raise RuntimeError("trace replay already started")
        self._running = True
        self._start_time = at
        source = self._source
        # Trace events are pulled lazily during the run; the wrapper meters
        # time spent generating them into the "workload-generate" span (a
        # plain pass-through when no telemetry collector is active).
        self._events = timed_iter(
            "workload-generate", iter(source(at) if callable(source) else source)
        )
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._running = False
        for stream in self.streams:
            stream.stop()

    # -- internals --------------------------------------------------------

    def _target_time(self, event: TraceEvent) -> float:
        if self._absolute_times:
            return event.time_s
        return self._start_time + event.time_s

    def _schedule_next(self) -> None:
        if not self._running:
            return
        assert self._events is not None
        event = next(self._events, None)
        if event is None:
            return
        target = self._target_time(event)
        if self._last_time is not None and target < self._last_time - 1e-12:
            raise TraceFormatError(
                f"trace event at {target:.9f}s precedes the previous event at "
                f"{self._last_time:.9f}s — traces must be time-ordered"
            )
        self._last_time = target
        self.sim.at_call(max(target, self.sim.now), self._issue, event)

    def _make_cc(self):
        if self.endhost_cc_factory is not None:
            return self.endhost_cc_factory()
        return make_window_cc(self.endhost_cc, mss=self.mss)

    def _pools(self, event: TraceEvent):
        if event.group == "cross":
            if not self.cross_senders or not self.cross_receivers:
                raise ValueError(
                    "trace contains 'cross' events but the replay was built "
                    "without cross_senders/cross_receivers pools"
                )
            return self.cross_senders, self.cross_receivers
        return self.servers, self.clients

    def _issue(self, event: TraceEvent) -> None:
        if not self._running:
            return
        # The next event is pulled in _schedule_next, *outside* the span,
        # so "trace-replay" (issuing) and "workload-generate" (pulling)
        # stay disjoint.
        with span("trace-replay"):
            self._issue_event(event)
        self._schedule_next()

    def _issue_event(self, event: TraceEvent) -> None:
        sources, sinks = self._pools(event)
        src = sources[event.src % len(sources)]
        dst = sinks[event.dst % len(sinks)]
        if event.kind == "flow":
            traffic_class = event.traffic_class
            if self.classify is not None:
                traffic_class = self.classify(event.size_bytes or 0)
            flow = TcpFlow(
                self.sim,
                self.factory,
                src,
                dst,
                size_bytes=event.size_bytes,
                cc=self._make_cc(),
                mss=self.mss,
                traffic_class=traffic_class,
                on_complete=self._flow_done,
            )
            self.flows.append(flow)
            self._flows_issued += 1
            flow.start()
        else:
            stream = PacedUdpStream(
                self.sim,
                self.factory,
                src,
                dst,
                rate_bps=event.rate_bps,
                packet_size=self.stream_packet_size,
                traffic_class=event.traffic_class,
            )
            self.streams.append(stream)
            self._streams_started += 1
            stream.start(duration=event.duration_s)

    def _flow_done(self, flow: TcpFlow) -> None:
        self.completed_records.append(flow.record())

    # -- results ----------------------------------------------------------

    @property
    def flows_issued(self) -> int:
        return self._flows_issued

    @property
    def streams_started(self) -> int:
        return self._streams_started

    @property
    def requests_issued(self) -> int:
        """Alias kept for the pre-trace ``RequestWorkload`` interface."""
        return self._flows_issued

    def records(self, include_incomplete: bool = False) -> List[FlowRecord]:
        """Flow records (completed only by default)."""
        if not include_incomplete:
            return list(self.completed_records)
        return [flow.record() for flow in self.flows]
