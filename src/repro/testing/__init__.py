"""Shared helpers for the test and benchmark suites.

Historically these lived in ``tests/conftest.py`` and ``benchmarks/conftest.py``
and were imported with ``from conftest import ...`` — which resolves to
*whichever* conftest pytest put on ``sys.path`` first, so collecting both
suites at once broke with an ImportError.  Importable helpers belong in an
importable package; conftest files should hold fixtures only.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.net.packet import Packet, PacketFactory

#: Common scaled-down dimensions used by the benchmark scenarios.
BENCH_SCALE = {
    "bottleneck_mbps": 24.0,
    "rtt_ms": 50.0,
    "duration_s": 15.0,
    "seed": 1,
}


def make_packet(
    factory: Optional[PacketFactory] = None,
    *,
    flow_id: int = 1,
    src: int = 1,
    dst: int = 2,
    src_port: int = 10,
    dst_port: int = 20,
    size: int = 1500,
    seq: int = 0,
    is_ack: bool = False,
    is_control: bool = False,
    traffic_class: int = 0,
) -> Packet:
    """Convenience packet constructor for qdisc/unit tests."""
    factory = factory if factory is not None else PacketFactory()
    return factory.make(
        flow_id=flow_id,
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        size=size,
        is_ack=is_ack,
        is_control=is_control,
        traffic_class=traffic_class,
    )


#: Environment variable naming the benchmark results side-file.
RESULTS_FILE_ENV = "REPRO_RESULTS_FILE"


def report(title: str, lines: Iterable[str]) -> None:
    """Print a paper-vs-measured block that survives pytest's capture.

    Writes straight to stdout (so ``pytest benchmarks/ -s`` shows it) and,
    when :data:`RESULTS_FILE_ENV` is set — ``benchmarks/conftest.py`` points
    it at ``benchmarks/results.txt`` — appends to that side-file so results
    are preserved even without ``-s``.
    """
    text = "\n".join([f"\n=== {title} ===", *lines])
    print(text)
    path = os.environ.get(RESULTS_FILE_ENV)
    if path:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(text + "\n")
