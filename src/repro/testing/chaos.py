"""Deterministic fault injection for the distributed pool.

Elasticity claims — leases survive network blips, batches survive worker
deaths, spilled results survive scheduler restarts — are only worth
anything if they are *tested*, and timing-based fault tests are flaky by
construction.  This module replaces timing luck with a seeded
:class:`FaultPlan`: a JSON-serializable schedule of frame-level faults
(drop / delay / duplicate / truncate) and process-level faults (kill /
stall) that the wire layer (:mod:`repro.runner.wire`) consults at every
frame it sends or receives.  The same plan with the same seed produces
the same faults at the same protocol points, every run, on every machine.

How a plan reaches a worker:

* **in-band** — the scheduler's ``welcome`` frame carries the plan plus
  the worker's registration index; the worker activates it on receipt
  (:class:`~repro.runner.distributed.DistributedBackend` ``chaos=``);
* **environment** — :data:`CHAOS_PLAN_ENV` holds the plan JSON (or
  ``@/path/to/plan.json``) and :data:`CHAOS_SITE_ENV` the site label;
  ``repro.runner.worker`` activates it before the hello.  This is how the
  CI chaos job injects faults through the ordinary CLI.

Determinism contract: a rule fires as a function of ``(plan seed, site,
rule index, per-rule matching-frame counter)`` only.  Frame counters tick
per *matching message type*, so pin rules to specific types (``outcome``,
``outcome_batch``, ``work_batch``) — ``heartbeat`` counts depend on wall
time and make ``nth`` matching timing-sensitive again.

Faults are injected, never simulated: a ``disconnect`` really severs the
connection (the peer sees EOF; a leased worker redials), a ``truncate``
really corrupts the byte stream (the peer hangs mid-frame until the hang
detector quarantines), a ``kill`` really exits the process.  The
scheduler code under test cannot tell a planned fault from a real one.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.rng import derive_seed

#: Environment variable carrying a plan as JSON text, or ``@<path>`` to a
#: JSON file.  Read once by :func:`activate_from_env`.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Environment variable naming the activating process's site label
#: (default ``worker``); part of the per-site RNG derivation.
CHAOS_SITE_ENV = "REPRO_CHAOS_SITE"

#: Exit code of an injected ``kill``, distinct from real failure codes
#: and from the legacy ``REPRO_WORKER_CRASH_AFTER`` hook's 117.
KILL_EXIT_CODE = 118

#: Frame-level actions operate on one encoded frame; a connection-level
#: ``disconnect`` severs the stream at a precise protocol point (the
#: lease-reconnect drill); process-level actions take down the whole
#: endpoint.
FRAME_ACTIONS = ("drop", "delay", "duplicate", "truncate")
CONNECTION_ACTIONS = ("disconnect",)
PROCESS_ACTIONS = ("kill", "stall")
ACTIONS = FRAME_ACTIONS + CONNECTION_ACTIONS + PROCESS_ACTIONS

#: Where a rule applies: as the consulting process sends a frame, or as
#: it receives one.
POINTS = ("send", "recv")

# Process-level hooks, monkeypatchable so in-process harnesses can turn a
# planned kill into an exception instead of taking down the test runner.
_exit = os._exit
_sleep = time.sleep


class ChaosDisconnect(ConnectionError):
    """Raised by a ``disconnect`` fault in place of the frame write/read.

    Subclasses :class:`ConnectionError` so the consulting process's
    ordinary connection-loss handling runs: the worker's serve loop exits
    ``conn_lost``, closes its socket (the scheduler sees EOF and suspends
    the lease), and redials.
    """


@dataclass(frozen=True)
class FaultRule:
    """One fault: *what* happens, *where*, and *when*.

    ``nth`` pins the rule to the nth matching frame (1-based) for exact
    reproductions; ``probability`` (used when ``nth`` is 0) rolls a
    seeded coin per matching frame for statistical plans.  ``count``
    bounds total firings (0 = unlimited).  ``workers`` restricts the rule
    to specific worker registration indices (None = every worker), which
    is how a plan kills exactly one member of a pool.
    """

    action: str
    point: str = "send"
    message_type: str = "*"
    nth: int = 0
    probability: float = 1.0
    count: int = 1
    delay_s: float = 0.05
    truncate_to: int = 6
    stall_s: float = 3600.0
    workers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {ACTIONS}")
        if self.point not in POINTS:
            raise ValueError(f"unknown fault point {self.point!r}; expected one of {POINTS}")
        if self.nth < 0:
            raise ValueError("nth must be >= 0 (0 = probabilistic)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.count < 0:
            raise ValueError("count must be >= 0 (0 = unlimited)")
        if self.truncate_to < 1:
            raise ValueError("truncate_to must be >= 1 (0 bytes is a clean EOF, not a fault)")
        if self.workers is not None:
            object.__setattr__(self, "workers", tuple(int(w) for w in self.workers))

    def matches_site(self, worker_index: Optional[int]) -> bool:
        if self.workers is None:
            return True
        return worker_index is not None and worker_index in self.workers

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "action": self.action,
            "point": self.point,
            "message_type": self.message_type,
            "nth": self.nth,
            "probability": self.probability,
            "count": self.count,
            "delay_s": self.delay_s,
            "truncate_to": self.truncate_to,
            "stall_s": self.stall_s,
        }
        if self.workers is not None:
            data["workers"] = list(self.workers)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultRule field(s): {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("workers") is not None:
            kwargs["workers"] = tuple(kwargs["workers"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults.

    The seed scopes every probabilistic decision; two sites (workers) with
    the same plan draw from *different* streams derived from their site
    labels, so "30% of frames are delayed" decorrelates across a pool
    while staying exactly reproducible.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def session(self, site: str = "worker", worker_index: Optional[int] = None) -> "FaultSession":
        return FaultSession(self, site=site, worker_index=worker_index)


class FaultSession:
    """One process's live view of a plan: per-rule counters and RNG streams.

    Installed into :mod:`repro.runner.wire` via :func:`activate`; the wire
    layer calls :meth:`on_send` / :meth:`on_recv` for every frame.  State
    persists for the process lifetime — a worker that reconnects after a
    blip keeps its counters, so a ``count=1`` rule does not re-fire on the
    resumed connection.
    """

    def __init__(self, plan: FaultPlan, *, site: str = "worker",
                 worker_index: Optional[int] = None) -> None:
        self.plan = plan
        self.site = site
        self.worker_index = worker_index
        self._lock = threading.Lock()
        self._seen: Dict[Tuple[int, str], int] = {}
        self._fired: List[int] = [0] * len(plan.rules)
        self._rngs = [
            random.Random(derive_seed(plan.seed, f"chaos:{site}:{index}"))
            for index in range(len(plan.rules))
        ]
        #: Ordered log of fired faults — ``(action, point, message_type,
        #: occurrence)`` — for tests asserting a plan really engaged.
        self.log: List[Tuple[str, str, str, int]] = []

    def _decide(self, point: str, message: Mapping[str, Any]) -> List[Tuple[FaultRule, int]]:
        kind = str(message.get("type", ""))
        fired: List[Tuple[FaultRule, int]] = []
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if rule.point != point or not rule.matches_site(self.worker_index):
                    continue
                if rule.message_type != "*" and rule.message_type != kind:
                    continue
                key = (index, kind if rule.message_type == "*" else rule.message_type)
                seen = self._seen.get(key, 0) + 1
                self._seen[key] = seen
                if rule.count and self._fired[index] >= rule.count:
                    continue
                if rule.nth:
                    if seen != rule.nth:
                        continue
                elif self._rngs[index].random() >= rule.probability:
                    continue
                self._fired[index] += 1
                fired.append((rule, seen))
                self.log.append((rule.action, point, kind, seen))
        return fired

    def _apply_process_fault(self, rule: FaultRule) -> None:
        if rule.action == "kill":
            _exit(KILL_EXIT_CODE)
        elif rule.action == "stall":
            _sleep(rule.stall_s)

    def on_send(self, message: Mapping[str, Any], data: bytes) -> List[bytes]:
        """Return the byte chunks to actually write for one outbound frame.

        ``[]`` drops the frame, ``[data, data]`` duplicates it, a
        truncated chunk corrupts the stream for good (the peer's next
        read dies mid-frame).  Process faults fire *before* the write —
        "killed while replying" means the reply never left.
        """
        chunks = [data]
        for rule, _ in self._decide("send", message):
            if rule.action in PROCESS_ACTIONS:
                self._apply_process_fault(rule)
            elif rule.action == "disconnect":
                raise ChaosDisconnect(
                    f"injected disconnect before sending {message.get('type')!r}"
                )
            elif rule.action == "drop":
                chunks = []
            elif rule.action == "delay":
                _sleep(rule.delay_s)
            elif rule.action == "duplicate":
                chunks = [chunk for chunk in chunks for _ in range(2)]
            elif rule.action == "truncate":
                chunks = [chunk[: rule.truncate_to] for chunk in chunks]
        return chunks

    def on_recv(self, message: Mapping[str, Any]) -> bool:
        """Decide one inbound frame's fate; False = pretend it never arrived."""
        keep = True
        for rule, _ in self._decide("recv", message):
            if rule.action in PROCESS_ACTIONS:
                self._apply_process_fault(rule)
            elif rule.action == "disconnect":
                raise ChaosDisconnect(
                    f"injected disconnect after receiving {message.get('type')!r}"
                )
            elif rule.action == "drop":
                keep = False
            elif rule.action == "delay":
                _sleep(rule.delay_s)
            # duplicate/truncate are send-side faults; harmless no-ops here.
        return keep


def activate(plan: FaultPlan, *, site: str = "worker",
             worker_index: Optional[int] = None) -> FaultSession:
    """Install ``plan`` into the wire layer for this process.

    Idempotent per plan identity: re-activating the *same* plan (same
    JSON) at the same site keeps the existing session and its counters —
    this is what stops a ``count=1`` rule from re-firing after a lease
    reconnect re-delivers the welcome frame.  A different plan replaces
    the session.
    """
    from repro.runner import wire

    current = wire.chaos_session()
    if (
        isinstance(current, FaultSession)
        and current.plan.to_json() == plan.to_json()
        and current.site == site
    ):
        if worker_index is not None and current.worker_index is None:
            current.worker_index = worker_index
        return current
    session = plan.session(site, worker_index=worker_index)
    wire.install_chaos(session)
    return session


def deactivate() -> None:
    """Remove any installed session (tests clean up with this)."""
    from repro.runner import wire

    wire.install_chaos(None)


def activate_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultSession]:
    """Activate a plan from :data:`CHAOS_PLAN_ENV`, if set.

    The value is either the plan JSON itself or ``@<path>`` naming a JSON
    file; :data:`CHAOS_SITE_ENV` labels the site (default ``worker``).
    Returns the session, or None when the environment requests no chaos.
    """
    environ = environ if environ is not None else os.environ
    raw = environ.get(CHAOS_PLAN_ENV)
    if not raw:
        return None
    if raw.startswith("@"):
        plan = FaultPlan.load(raw[1:])
    else:
        plan = FaultPlan.from_json(raw)
    site = environ.get(CHAOS_SITE_ENV) or "worker"
    return activate(plan, site=site)


@dataclass(frozen=True)
class _PlanLibrary:
    """Tiny builders for the pinned plans the chaos tests and CI use."""

    @staticmethod
    def kill_worker_mid_batch(worker: int = 0, *, seed: int = 1) -> FaultPlan:
        """Worker ``worker`` dies at the precise point it would reply with
        its first batch of results — after executing, before sending."""
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(action="kill", point="send", message_type="outcome_batch",
                          nth=1, workers=(worker,)),
                FaultRule(action="kill", point="send", message_type="outcome",
                          nth=1, workers=(worker,)),
            ),
        )

    @staticmethod
    def delay_frames(probability: float = 0.3, delay_s: float = 0.02, *, seed: int = 1) -> FaultPlan:
        """Delay a seeded fraction of every worker's frames, both ways."""
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(action="delay", point="send", probability=probability,
                          delay_s=delay_s, count=0),
                FaultRule(action="delay", point="recv", probability=probability,
                          delay_s=delay_s, count=0),
            ),
        )

    @staticmethod
    def kill_all_before_reply(*, seed: int = 1) -> FaultPlan:
        """Every worker dies before its first result frame — the
        scheduler-restart drill: nothing comes home except via spill."""
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(action="kill", point="send", message_type="outcome_batch", nth=1),
                FaultRule(action="kill", point="send", message_type="outcome", nth=1),
            ),
        )

    @staticmethod
    def sever_on_result(nth: int = 1, *, seed: int = 1,
                        workers: Optional[Sequence[int]] = None) -> FaultPlan:
        """Sever the connection as the nth result frame would leave — the
        network-blip drill: the batch is lost, the scheduler suspends the
        lease on EOF, the worker redials and re-earns the cells."""
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(action="disconnect", point="send", message_type="outcome_batch",
                          nth=nth, workers=tuple(workers) if workers else None),
                FaultRule(action="disconnect", point="send", message_type="outcome",
                          nth=nth, workers=tuple(workers) if workers else None),
            ),
        )

    @staticmethod
    def truncate_result(nth: int = 1, *, seed: int = 1,
                        workers: Optional[Sequence[int]] = None) -> FaultPlan:
        """Corrupt a result frame mid-flight: the scheduler's reader hangs
        on the short frame until the hang detector quarantines the
        worker — the stream-corruption (not blip) drill."""
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(action="truncate", point="send", message_type="outcome_batch",
                          nth=nth, workers=tuple(workers) if workers else None),
                FaultRule(action="truncate", point="send", message_type="outcome",
                          nth=nth, workers=tuple(workers) if workers else None),
            ),
        )


PLANS = _PlanLibrary()
