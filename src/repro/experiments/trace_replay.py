"""Trace-replay scenarios: arbitrary traffic shapes through the §7.1 site.

The paper's evaluation replays one traffic shape — Poisson arrivals of
heavy-tailed requests.  This family replays *any* trace (see
:mod:`repro.traffic`) through the same site-to-site topology and Bundler
modes, which is what exposes control-loop behavior under arrival patterns
the original workload never produces: diurnal load swings, flash crowds,
adversarial bursty cross traffic.

The ``trace`` parameter is a trace *spec* — a generator spec (synthetic,
regenerated deterministically from ``(spec, seed)`` wherever the cell
executes), a trace file, or a store digest.  Cache keys are
digest-addressed: identical trace content yields identical keys regardless
of where the trace lives (see ``docs/workloads.md``).

Registered scenarios:

``trace_diurnal_load``
    Markov-modulated arrivals cycling a compressed diurnal profile.
``trace_flash_crowd``
    A non-homogeneous Poisson ramp to several times the baseline rate.
``trace_bursty_cross``
    The §7.1 request workload plus adversarial on/off paced cross-traffic
    bursts injected beyond the sendbox.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import BundlerConfig, install_bundler
from repro.metrics.fct import FctAnalysis
from repro.net.simulator import Simulator
from repro.net.topology import build_site_to_site
from repro.qdisc.sfq import SfqQdisc
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.traffic.replay import TraceReplayWorkload
from repro.traffic.spec import open_trace
from repro.transport.proxy import idealized_proxy_window, proxy_buffer_packets
from repro.util.rng import derive_seed
from repro.util.units import mbps_to_bps, ms_to_s
from repro.experiments.scenarios import ALL_MODES, BUNDLER_MODES


def run_trace_replay(
    *,
    seed: int,
    trace,
    mode: str = "bundler_sfq",
    bottleneck_mbps: float = 12.0,
    rtt_ms: float = 40.0,
    duration_s: float = 8.0,
    warmup_s: float = 1.0,
    num_servers: int = 4,
    num_clients: int = 1,
    num_cross_pairs: int = 0,
    endhost_cc: str = "cubic",
    sendbox_cc: str = "copa",
    enable_nimbus: bool = True,
) -> Dict[str, object]:
    """Replay ``trace`` through the site-to-site topology; return metrics.

    ``trace`` is a coerced trace spec (the scenario's ``ParamSpace`` has
    already canonicalized it).  Synthetic traces are regenerated under
    ``derive_seed(seed, "traffic")``, so a seed sweep varies the sampled
    trace exactly like it varies the legacy workload's RNG.
    """
    sim = Simulator()
    bottleneck_qdisc_factory = None
    if mode == "in_network_sfq":
        bottleneck_qdisc_factory = lambda: SfqQdisc()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=num_servers,
        num_clients=num_clients,
        num_cross_pairs=num_cross_pairs,
        bottleneck_qdisc_factory=bottleneck_qdisc_factory,
    )

    if mode in BUNDLER_MODES:
        kwargs = dict(
            sendbox_cc=sendbox_cc,
            scheduler=BUNDLER_MODES[mode],
            enable_nimbus=enable_nimbus,
            initial_rate_bps=mbps_to_bps(bottleneck_mbps) / 2.0,
        )
        if mode == "proxy":
            kwargs["sendbox_queue_packets"] = proxy_buffer_packets(
                mbps_to_bps(bottleneck_mbps), ms_to_s(rtt_ms), num_servers
            )
        install_bundler(topo, BundlerConfig(**kwargs))

    endhost_cc_factory = None
    if mode == "proxy":
        endhost_cc_factory = lambda: idealized_proxy_window(
            mbps_to_bps(bottleneck_mbps), ms_to_s(rtt_ms)
        )

    events = open_trace(trace, seed=derive_seed(seed, "traffic"))
    workload = TraceReplayWorkload(
        sim,
        topo.packet_factory,
        topo.servers,
        topo.clients,
        events=events,
        endhost_cc=endhost_cc,
        endhost_cc_factory=endhost_cc_factory,
        cross_senders=topo.cross_senders,
        cross_receivers=topo.cross_receivers,
    )
    workload.start()
    # Run past the replay horizon so flows started near the end can drain.
    sim.run(until=duration_s + 5.0)

    bundle_records = [
        flow.record()
        for flow in workload.flows
        if flow.sender.host in topo.servers
    ]
    analysis = FctAnalysis.from_records(
        bundle_records,
        rtt_s=ms_to_s(rtt_ms),
        bottleneck_bps=mbps_to_bps(bottleneck_mbps),
        warmup_s=warmup_s,
    )
    buckets = analysis.by_size_bucket()

    def _maybe(bucket, fn_name: str, *args):
        return getattr(bucket, fn_name)(*args) if len(bucket) else None

    completed = len([r for r in bundle_records if r.completed])
    return {
        "flows_replayed": workload.flows_issued,
        "streams_replayed": workload.streams_started,
        "completed": len(analysis),
        # Bundle flows only, numerator and denominator alike: a trace that
        # also carries cross-group *flow* events must still read 1.0 when
        # every measured (bundle) flow completes.
        "completion_fraction": (
            completed / len(bundle_records) if bundle_records else 0.0
        ),
        "median_slowdown": _maybe(analysis, "median_slowdown"),
        "p99_slowdown": _maybe(analysis, "percentile_slowdown", 99),
        "small_median_slowdown": _maybe(buckets["<=10KB"], "median_slowdown"),
        "large_median_slowdown": _maybe(buckets[">1MB"], "median_slowdown"),
        "bottleneck_drops": sum(l.packets_dropped for l in topo.bottleneck_links),
        "sendbox_drops": topo.sendbox_link.packets_dropped,
    }


#: Shared knob set of the trace-replay family.  Each registration swaps the
#: ``trace`` default (and topology knobs) via :meth:`ParamSpace.with_defaults`.
TRACE_REPLAY_PARAMS = ParamSpace(
    ParamSpec("trace", kind="trace",
              default={"generator": "diurnal"},
              description="trace spec: generator, file path, or store digest "
                          "(digest-addressed in cache keys)"),
    ParamSpec("mode", kind="str", default="bundler_sfq", choices=ALL_MODES,
              description="who controls queueing, and with which scheduler"),
    ParamSpec("bottleneck_mbps", kind="float", default=12.0, unit="Mbit/s", minimum=1.0,
              description="bottleneck link rate"),
    ParamSpec("rtt_ms", kind="float", default=40.0, unit="ms", minimum=1.0,
              description="base round-trip time of the site-to-site path"),
    ParamSpec("duration_s", kind="float", default=8.0, unit="s", minimum=1.0,
              description="replay horizon fed to the FCT analysis and drain"),
    ParamSpec("warmup_s", kind="float", default=1.0, unit="s", minimum=0.0,
              description="leading interval excluded from FCT analysis"),
    ParamSpec("num_servers", kind="int", default=4, unit="count", minimum=1,
              description="bundled endhosts behind the sendbox"),
    ParamSpec("num_clients", kind="int", default=1, unit="count", minimum=1,
              description="receiving endhosts behind the receivebox"),
    ParamSpec("num_cross_pairs", kind="int", default=0, unit="count", minimum=0,
              description="cross-traffic host pairs beyond the sendbox "
                          "(required by traces with 'cross' events)"),
    ParamSpec("endhost_cc", kind="str", default="cubic",
              choices=("cubic", "reno", "vegas", "bbr", "constant"),
              description="endhost window congestion controller"),
    ParamSpec("sendbox_cc", kind="str", default="copa",
              choices=("copa", "basic_delay", "bbr", "constant"),
              description="bundle-level rate congestion controller"),
    ParamSpec("enable_nimbus", kind="bool", default=True,
              description="enable Nimbus cross-traffic elasticity detection"),
)

#: What every trace-replay scenario reports (bundle flows only — cross
#: traffic is load, not the measured workload).
TRACE_REPLAY_METRICS = MetricSchema(
    MetricSpec("flows_replayed", unit="count", direction="info",
               description="flow events issued from the trace"),
    MetricSpec("streams_replayed", unit="count", direction="info",
               description="paced-stream events issued from the trace"),
    MetricSpec("completed", unit="count", direction="higher",
               description="post-warm-up bundle flows that completed"),
    MetricSpec("completion_fraction", unit="fraction", direction="higher",
               description="completed bundle flows / issued bundle flows"),
    MetricSpec("median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median FCT slowdown of bundle flows"),
    MetricSpec("p99_slowdown", unit="ratio", direction="lower", nullable=True,
               description="99th-percentile FCT slowdown"),
    MetricSpec("small_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of <=10KB flows"),
    MetricSpec("large_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of >1MB flows"),
    MetricSpec("bottleneck_drops", unit="packets", direction="lower",
               description="packets dropped at the bottleneck"),
    MetricSpec("sendbox_drops", unit="packets", direction="info",
               description="packets dropped at the sendbox (where drops should move)"),
)


def _run_registered_trace_replay(*, seed: int, **params) -> Dict[str, object]:
    return run_trace_replay(seed=seed, **params)


register_scenario(
    "trace_diurnal_load",
    figure="beyond the paper (workload family)",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Diurnal (Markov-modulated) request load replayed through the site",
    params=TRACE_REPLAY_PARAMS.with_defaults(
        trace={"generator": "diurnal", "params": {
            # ~7.5 Mbit/s mean offered load against the 12 Mbit/s default
            # bottleneck; the 1.7x peak phase briefly exceeds capacity.
            "base_rate_per_s": 300.0,
            "period_s": 4.0,
            "profile": [0.4, 1.0, 1.7, 1.0],
            "horizon_s": 8.0,
            "num_src": 4,
        }},
    ),
    metrics=TRACE_REPLAY_METRICS,
)(_run_registered_trace_replay)

register_scenario(
    "trace_flash_crowd",
    figure="beyond the paper (workload family)",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Flash-crowd arrival ramp: baseline to a multiple of the baseline and back",
    params=TRACE_REPLAY_PARAMS.with_defaults(
        trace={"generator": "flash_crowd", "params": {
            # ~3.7 Mbit/s baseline; the 4x crowd peaks at ~125% of the
            # 12 Mbit/s default bottleneck for the hold interval.
            "base_rate_per_s": 150.0,
            "peak_multiplier": 4.0,
            "start_s": 2.0,
            "ramp_s": 1.0,
            "hold_s": 2.0,
            "decay_s": 1.0,
            "horizon_s": 8.0,
            "num_src": 4,
        }},
    ),
    metrics=TRACE_REPLAY_METRICS,
)(_run_registered_trace_replay)

register_scenario(
    "trace_bursty_cross",
    figure="beyond the paper (workload family)",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Request workload with adversarial on/off paced cross-traffic bursts",
    params=TRACE_REPLAY_PARAMS.with_defaults(
        trace={"generator": "mix", "params": {"components": [
            {"generator": "requests", "params": {
                "offered_load_bps": 7_000_000.0,
                "horizon_s": 8.0,
                "num_src": 4,
            }},
            {"generator": "onoff", "params": {
                "rate_bps": 5_000_000.0,
                "mean_on_s": 0.4,
                "mean_off_s": 0.6,
                "horizon_s": 8.0,
                "group": "cross",
            }},
        ]}},
        num_cross_pairs=1,
    ),
    metrics=TRACE_REPLAY_METRICS,
)(_run_registered_trace_replay)
