"""Figure 16 / §8: the real-Internet-paths study, emulated.

The paper deploys a sendbox in a GCP region and receiveboxes in five other
regions, routes traffic over the public Internet, and runs two workloads per
bundle: ten parallel closed-loop 40-byte request/response probes (to measure
application-level RTTs) plus twenty backlogged bulk flows (to create load).
It finds that Status Quo RTTs are far above the unloaded ("Base") RTTs —
queueing is happening somewhere outside either site — and that Bundler
restores probe RTTs to near the base values (57% lower than Status Quo at
the median) without hurting bulk throughput.

Real WAN paths are not available here, so each region is emulated as a
rate-limited path (standing in for the suspected cloud egress rate limiter)
with a region-specific base RTT.  The three configurations reproduce the
figure's three bars per region: Base (probes alone), Status Quo (probes +
bulk, no Bundler) and Bundler (probes + bulk, Bundler with SFQ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import BundlerConfig, install_bundler
from repro.net.simulator import Simulator
from repro.net.topology import build_site_to_site
from repro.net.trace import percentile
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.runner.spec import expand_grid
from repro.util.units import mbps_to_bps
from repro.workload.generators import BackloggedFlows, ClosedLoopProbes

#: The five receiving regions of the paper's deployment and the base RTTs we
#: emulate for them (Iowa to: Belgium, Frankfurt, Oregon, South Carolina, Tokyo).
DEFAULT_REGIONS: Dict[str, float] = {
    "belgium": 100.0,
    "frankfurt": 110.0,
    "oregon": 40.0,
    "south_carolina": 30.0,
    "tokyo": 150.0,
}


@dataclass
class RegionResult:
    """Probe RTTs and bulk throughput for one region under one configuration."""

    region: str
    configuration: str
    base_rtt_ms: float
    probe_rtts_ms: List[float]
    per_probe_rtts_ms: List[List[float]]
    bulk_throughput_mbps: float

    def median_probe_rtt_ms(self) -> float:
        return percentile(self.probe_rtts_ms, 50.0)

    def p99_probe_rtt_ms(self) -> float:
        return percentile(self.probe_rtts_ms, 99.0)


def run_region(
    *,
    region: str,
    base_rtt_ms: float,
    configuration: str,
    egress_limit_mbps: float = 24.0,
    duration_s: float = 20.0,
    num_probes: int = 10,
    num_bulk_flows: int = 5,
    sendbox_cc: str = "copa",
) -> RegionResult:
    """Run one (region, configuration) cell of the Figure 16 matrix.

    ``configuration`` is ``"base"`` (probes only), ``"status_quo"`` (probes +
    bulk flows, no Bundler) or ``"bundler"`` (probes + bulk flows + Bundler
    with SFQ at the sendbox).
    """
    if configuration not in ("base", "status_quo", "bundler"):
        raise ValueError("configuration must be base, status_quo or bundler")
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=egress_limit_mbps,
        rtt_ms=base_rtt_ms,
        num_servers=max(num_bulk_flows, 1) + 1,
        num_clients=1,
    )
    if configuration == "bundler":
        install_bundler(
            topo,
            BundlerConfig(
                sendbox_cc=sendbox_cc,
                scheduler="sfq",
                enable_nimbus=True,
                initial_rate_bps=mbps_to_bps(egress_limit_mbps) / 2.0,
            ),
        )
    probes = ClosedLoopProbes(
        sim,
        topo.packet_factory,
        topo.servers[0],
        topo.clients[0],
        count=num_probes,
    ).start()
    bulk = None
    if configuration != "base":
        bulk = BackloggedFlows(
            sim,
            topo.packet_factory,
            [(topo.servers[1 + i % (len(topo.servers) - 1)], topo.clients[0]) for i in range(num_bulk_flows)],
            endhost_cc="cubic",
        ).start(at=0.5)
    sim.run(until=duration_s)

    bulk_mbps = bulk.mean_throughput_bps(duration_s) / 1e6 if bulk is not None else 0.0
    rtts_ms = [r * 1e3 for r in probes.all_rtts()]
    per_probe = [[r * 1e3 for r in rtts] for rtts in probes.per_probe_rtts()]
    return RegionResult(
        region=region,
        configuration=configuration,
        base_rtt_ms=base_rtt_ms,
        probe_rtts_ms=rtts_ms,
        per_probe_rtts_ms=per_probe,
        bulk_throughput_mbps=bulk_mbps,
    )


def run_internet_paths_study(
    regions: Optional[Dict[str, float]] = None,
    configurations: Sequence[str] = ("base", "status_quo", "bundler"),
    **kwargs,
) -> List[RegionResult]:
    """Run the full (regions × configurations) study."""
    regions = regions if regions is not None else DEFAULT_REGIONS
    cells = expand_grid({"region": list(regions), "configuration": configurations})
    return [
        run_region(
            region=cell["region"],
            base_rtt_ms=regions[cell["region"]],
            configuration=cell["configuration"],
            **kwargs,
        )
        for cell in cells
    ]


@register_scenario(
    "fig16_internet_paths",
    figure="Figure 16 / §8",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Emulated WAN region: probe RTTs under base / status-quo / Bundler",
    params=ParamSpace(
        ParamSpec("region", kind="str", default="belgium",
                  description="emulated WAN region (one of the paper's five, or any "
                              "name with base_rtt_ms set explicitly)"),
        ParamSpec("base_rtt_ms", kind="float", default=None, unit="ms", minimum=1.0,
                  nullable=True,
                  description="region base RTT (None = look the region up in DEFAULT_REGIONS)"),
        ParamSpec("configuration", kind="str", default="bundler",
                  choices=("base", "status_quo", "bundler"),
                  description="path configuration under test"),
        ParamSpec("egress_limit_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="site egress rate limit"),
        ParamSpec("duration_s", kind="float", default=20.0, unit="s", minimum=1.0,
                  description="run duration"),
        ParamSpec("num_probes", kind="int", default=10, unit="count", minimum=1,
                  description="closed-loop request/response probes"),
        ParamSpec("num_bulk_flows", kind="int", default=5, unit="count", minimum=0,
                  description="backlogged bulk flows sharing the egress"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("median_probe_rtt_ms", unit="ms", direction="lower",
                   description="median probe round-trip time"),
        MetricSpec("p99_probe_rtt_ms", unit="ms", direction="lower",
                   description="99th-percentile probe round-trip time"),
        MetricSpec("bulk_throughput_mbps", unit="Mbit/s", direction="higher",
                   description="aggregate bulk-flow throughput"),
        MetricSpec("probe_count", unit="count", direction="info",
                   description="probe round trips measured"),
    ),
    seed_sensitive=False,
)
def _internet_paths_scenario(*, seed: int, region: str, base_rtt_ms, **params):
    # Probes and backlogged bulk flows are deterministic; seed unused.
    if base_rtt_ms is None:
        if region not in DEFAULT_REGIONS:
            raise KeyError(
                f"unknown region {region!r}: pass base_rtt_ms explicitly or use one of "
                f"{sorted(DEFAULT_REGIONS)}"
            )
        base_rtt_ms = DEFAULT_REGIONS[region]
    result = run_region(region=region, base_rtt_ms=base_rtt_ms, **params)
    return {
        "median_probe_rtt_ms": result.median_probe_rtt_ms(),
        "p99_probe_rtt_ms": result.p99_probe_rtt_ms(),
        "bulk_throughput_mbps": result.bulk_throughput_mbps,
        "probe_count": len(result.probe_rtts_ms),
    }


def median_latency_reduction(results: Sequence[RegionResult]) -> float:
    """Overall median probe-RTT reduction of Bundler versus Status Quo.

    The paper reports 57% lower request/response latencies at the median.
    """
    status_quo = [r for r in results if r.configuration == "status_quo"]
    bundler = [r for r in results if r.configuration == "bundler"]
    if not status_quo or not bundler:
        raise ValueError("need both status_quo and bundler results")
    sq_all = [rtt for r in status_quo for rtt in r.probe_rtts_ms]
    bu_all = [rtt for r in bundler for rtt in r.probe_rtts_ms]
    sq_median = percentile(sq_all, 50.0)
    bu_median = percentile(bu_all, 50.0)
    return (sq_median - bu_median) / sq_median
