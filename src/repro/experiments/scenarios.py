"""The workhorse evaluation scenario (§7.1) and its configuration.

A scenario is: the site-to-site topology at a given bottleneck rate and RTT,
a heavy-tailed request workload offered at a fraction of the bottleneck
rate, and one of several *modes* describing who controls queueing and how:

``status_quo``
    No Bundler; the bottleneck is a drop-tail FIFO (what the paper calls
    "Status Quo").
``bundler_sfq`` / ``bundler_fifo`` / ``bundler_fq_codel`` / ``bundler_prio``
    Bundler installed at the site edges with the given scheduling policy at
    the sendbox (SFQ is the paper's default).
``in_network_sfq``
    No Bundler, but the bottleneck router itself runs fair queueing — the
    undeployable "In-Network" upper bound of Figure 9.
``proxy``
    The §7.5 idealized TCP-terminating proxy emulation: Bundler with SFQ
    plus constant-window endhosts and a deep sendbox buffer.

The default dimensions are scaled down from the paper's (which used
1,000,000 requests per run at 96 Mbit/s) so that a full figure's worth of
configurations runs in seconds on a laptop; the scale knobs are all explicit
fields of :class:`ScenarioConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.core import BundlerConfig, install_bundler
from repro.core.controller import BundlerMode
from repro.cc import make_window_cc
from repro.metrics.fct import FctAnalysis
from repro.net.simulator import Simulator
from repro.net.topology import SiteToSite, build_site_to_site
from repro.net.trace import TimeSeries
from repro.qdisc.sfq import SfqQdisc
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.transport.flow import FlowRecord
from repro.transport.proxy import idealized_proxy_window, proxy_buffer_packets
from repro.util.rng import derive_seed, make_rng
from repro.util.units import mbps_to_bps, ms_to_s
from repro.workload.flowsize import EmpiricalSizeDistribution, internet_core_cdf
from repro.workload.generators import RequestWorkload

#: Modes that install a Bundler pair, mapped to the sendbox scheduler they use.
BUNDLER_MODES: Dict[str, str] = {
    "bundler_sfq": "sfq",
    "bundler_fifo": "fifo",
    "bundler_fq_codel": "fq_codel",
    "bundler_prio": "prio",
    "bundler_drr": "drr",
    "proxy": "sfq",
}

ALL_MODES = ("status_quo", "in_network_sfq", *BUNDLER_MODES.keys())


@dataclass
class ScenarioConfig:
    """Configuration of one evaluation run."""

    mode: str = "bundler_sfq"
    bottleneck_mbps: float = 24.0
    rtt_ms: float = 50.0
    load_fraction: float = 0.875
    duration_s: float = 30.0
    warmup_s: float = 2.0
    num_servers: int = 8
    num_clients: int = 1
    max_requests: Optional[int] = None
    seed: int = 1
    endhost_cc: str = "cubic"
    sendbox_cc: str = "copa"
    enable_nimbus: bool = True
    size_distribution: Optional[EmpiricalSizeDistribution] = None
    bundler_overrides: Dict[str, object] = field(default_factory=dict)
    #: Classifier for strict-priority runs: maps flow size (bytes) to a class.
    priority_class_for_size: Optional[Callable[[int], int]] = None

    def __post_init__(self) -> None:
        if self.mode not in ALL_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {ALL_MODES}")
        if not 0.0 < self.load_fraction < 1.5:
            raise ValueError("load_fraction should be a sensible fraction of the bottleneck")
        if self.duration_s <= self.warmup_s:
            raise ValueError("duration must exceed warmup")

    @property
    def offered_load_bps(self) -> float:
        return self.load_fraction * mbps_to_bps(self.bottleneck_mbps)

    def with_mode(self, mode: str) -> "ScenarioConfig":
        """Copy of this config with a different mode (same seed and workload)."""
        return replace(self, mode=mode)


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one scenario run."""

    config: ScenarioConfig
    records: List[FlowRecord]
    requests_issued: int
    bottleneck_queue_delay: TimeSeries
    sendbox_queue_delay: TimeSeries
    bottleneck_throughput: TimeSeries
    bottleneck_drops: int
    sendbox_drops: int
    bundler_mode_history: Optional[TimeSeries] = None
    bundler_rate_history: Optional[TimeSeries] = None
    bundler_min_rtt: Optional[float] = None
    out_of_order_fraction: Optional[float] = None

    def fct_analysis(self, warmup_s: Optional[float] = None) -> FctAnalysis:
        """Slowdown analysis over the completed, post-warm-up flows."""
        warmup = self.config.warmup_s if warmup_s is None else warmup_s
        return FctAnalysis.from_records(
            self.records,
            rtt_s=ms_to_s(self.config.rtt_ms),
            bottleneck_bps=mbps_to_bps(self.config.bottleneck_mbps),
            warmup_s=warmup,
        )

    def median_slowdown(self) -> float:
        return self.fct_analysis().median_slowdown()

    def completion_fraction(self) -> float:
        """Fraction of issued requests that completed within the run."""
        if self.requests_issued == 0:
            return 0.0
        return len([r for r in self.records if r.completed]) / self.requests_issued


def _default_priority_classifier(size_bytes: int) -> int:
    """Small requests are high priority (class 0), bulk requests are class 1."""
    return 0 if size_bytes <= 100_000 else 1


def _build_topology(config: ScenarioConfig) -> SiteToSite:
    sim = Simulator()
    bottleneck_qdisc_factory = None
    if config.mode == "in_network_sfq":
        bottleneck_qdisc_factory = lambda: SfqQdisc()
    return build_site_to_site(
        sim,
        bottleneck_mbps=config.bottleneck_mbps,
        rtt_ms=config.rtt_ms,
        num_servers=config.num_servers,
        num_clients=config.num_clients,
        bottleneck_qdisc_factory=bottleneck_qdisc_factory,
    )


def _bundler_config(config: ScenarioConfig) -> BundlerConfig:
    scheduler = BUNDLER_MODES[config.mode]
    overrides = dict(config.bundler_overrides)
    kwargs = dict(
        sendbox_cc=config.sendbox_cc,
        scheduler=scheduler,
        enable_nimbus=config.enable_nimbus,
        initial_rate_bps=mbps_to_bps(config.bottleneck_mbps) / 2.0,
    )
    if config.mode == "proxy":
        kwargs["sendbox_queue_packets"] = proxy_buffer_packets(
            mbps_to_bps(config.bottleneck_mbps), ms_to_s(config.rtt_ms), config.num_servers
        )
    kwargs.update(overrides)
    return BundlerConfig(**kwargs)


def _endhost_cc_factory(config: ScenarioConfig) -> Callable[[], object]:
    if config.mode == "proxy":
        window = idealized_proxy_window(
            mbps_to_bps(config.bottleneck_mbps), ms_to_s(config.rtt_ms)
        )
        return lambda: idealized_proxy_window(
            mbps_to_bps(config.bottleneck_mbps), ms_to_s(config.rtt_ms)
        )
    return lambda: make_window_cc(config.endhost_cc)


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build the topology and workload for ``config``, run it, and collect results."""
    topo = _build_topology(config)
    sim = topo.sim

    bundler_pair = None
    if config.mode in BUNDLER_MODES:
        bundler_pair = install_bundler(topo, _bundler_config(config))

    rng = make_rng(derive_seed(config.seed, "workload"))
    classify = None
    if config.mode == "bundler_prio":
        # Each request's traffic class reflects its size, from the first
        # packet on (pre-trace versions patched the class in after the
        # flow had started, letting the initial window out as class 0).
        classify = config.priority_class_for_size or _default_priority_classifier
    workload = RequestWorkload(
        sim,
        topo.packet_factory,
        topo.servers,
        topo.clients,
        offered_load_bps=config.offered_load_bps,
        rng=rng,
        size_distribution=config.size_distribution,
        endhost_cc_factory=_endhost_cc_factory(config),
        max_requests=config.max_requests,
        duration_s=config.duration_s,
        classify=classify,
    )
    workload.start()
    # Let flows that started near the end drain: run a little past the
    # workload duration so their completions are recorded.
    sim.run(until=config.duration_s + 5.0)

    mode_history = None
    rate_history = None
    min_rtt = None
    ooo_fraction = None
    if bundler_pair is not None:
        state = bundler_pair.sendbox.bundles.get(0)
        if state is not None:
            mode_history = state.controller.mode_history
            rate_history = state.controller.rate_history
            min_rtt = state.measurement.min_rtt
            ooo_fraction = state.measurement.out_of_order_fraction()

    return ScenarioResult(
        config=config,
        records=workload.records(include_incomplete=True),
        requests_issued=workload.requests_issued,
        bottleneck_queue_delay=topo.bottleneck_links[0].monitor.delay,
        sendbox_queue_delay=topo.sendbox_link.monitor.delay,
        bottleneck_throughput=topo.bottleneck_links[0].rate_monitor.series_bps(),
        bottleneck_drops=sum(l.packets_dropped for l in topo.bottleneck_links),
        sendbox_drops=topo.sendbox_link.packets_dropped,
        bundler_mode_history=mode_history,
        bundler_rate_history=rate_history,
        bundler_min_rtt=min_rtt,
        out_of_order_fraction=ooo_fraction,
    )


def run_scenarios(configs: List[ScenarioConfig]) -> Dict[str, ScenarioResult]:
    """Run several configurations and key the results by mode name."""
    results: Dict[str, ScenarioResult] = {}
    for config in configs:
        results[config.mode] = run_scenario(config)
    return results


# ---------------------------------------------------------------------------
# Runner scenario registrations.

def scenario_metrics(result: ScenarioResult) -> Dict[str, object]:
    """Flatten a :class:`ScenarioResult` into the runner's metrics dict.

    Percentile metrics are ``None`` (not NaN — the cache stores JSON) when a
    size bucket has no completed flows.
    """
    analysis = result.fct_analysis()
    buckets = analysis.by_size_bucket()

    def _maybe(bucket, fn_name: str, *args):
        return getattr(bucket, fn_name)(*args) if len(bucket) else None

    return {
        "requests_issued": result.requests_issued,
        "completed": len(analysis),
        "completion_fraction": result.completion_fraction(),
        "median_slowdown": _maybe(analysis, "median_slowdown"),
        "p99_slowdown": _maybe(analysis, "percentile_slowdown", 99),
        "small_median_slowdown": _maybe(buckets["<=10KB"], "median_slowdown"),
        "mid_median_slowdown": _maybe(buckets["10KB-1MB"], "median_slowdown"),
        "large_median_slowdown": _maybe(buckets[">1MB"], "median_slowdown"),
        "small_p99_slowdown": _maybe(buckets["<=10KB"], "percentile_slowdown", 99),
        "bottleneck_drops": result.bottleneck_drops,
        "sendbox_drops": result.sendbox_drops,
        "out_of_order_fraction": result.out_of_order_fraction,
    }


def _check_load_fraction(value: float) -> None:
    if not 0.0 < value < 1.5:
        raise ValueError("load_fraction should be a sensible fraction of the bottleneck")


#: Typed knob set of the §7.1 workload scenario family (Figures 9/14/15,
#: §7.2 policies, §7.4 table).  Individual registrations derive from this
#: via :meth:`ParamSpace.with_defaults`.
SCENARIO_PARAMS = ParamSpace(
    ParamSpec("mode", kind="str", default="bundler_sfq", choices=ALL_MODES,
              description="who controls queueing, and with which scheduler"),
    ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
              description="bottleneck link rate"),
    ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
              description="base round-trip time of the site-to-site path"),
    ParamSpec("load_fraction", kind="float", default=0.875, unit="fraction",
              validator=_check_load_fraction,
              description="offered load as a fraction of the bottleneck rate"),
    ParamSpec("duration_s", kind="float", default=15.0, unit="s", minimum=1.0,
              description="workload duration"),
    ParamSpec("warmup_s", kind="float", default=2.0, unit="s", minimum=0.0,
              description="leading interval excluded from FCT analysis"),
    ParamSpec("num_servers", kind="int", default=8, unit="count", minimum=1,
              description="request-serving endhosts behind the sendbox"),
    ParamSpec("num_clients", kind="int", default=1, unit="count", minimum=1,
              description="request-issuing endhosts behind the receivebox"),
    ParamSpec("max_requests", kind="int", default=None, unit="count", minimum=1, nullable=True,
              description="request cap (None = run to duration)"),
    ParamSpec("endhost_cc", kind="str", default="cubic",
              choices=("cubic", "reno", "vegas", "bbr", "constant"),
              description="endhost window congestion controller"),
    ParamSpec("sendbox_cc", kind="str", default="copa",
              choices=("copa", "basic_delay", "bbr", "constant"),
              description="bundle-level rate congestion controller"),
    ParamSpec("enable_nimbus", kind="bool", default=True,
              description="enable Nimbus cross-traffic elasticity detection"),
)

#: Schema of :func:`scenario_metrics` — what every family member reports.
SCENARIO_METRICS = MetricSchema(
    MetricSpec("requests_issued", unit="count", direction="info",
               description="requests the workload issued"),
    MetricSpec("completed", unit="count", direction="higher",
               description="post-warm-up flows that completed"),
    MetricSpec("completion_fraction", unit="fraction", direction="higher",
               description="completed / issued"),
    MetricSpec("median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median FCT slowdown vs the ideal FCT"),
    MetricSpec("p99_slowdown", unit="ratio", direction="lower", nullable=True,
               description="99th-percentile FCT slowdown"),
    MetricSpec("small_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of <=10KB flows"),
    MetricSpec("mid_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of 10KB-1MB flows"),
    MetricSpec("large_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of >1MB flows"),
    MetricSpec("small_p99_slowdown", unit="ratio", direction="lower", nullable=True,
               description="99th-percentile slowdown of <=10KB flows"),
    MetricSpec("bottleneck_drops", unit="packets", direction="lower",
               description="packets dropped at the bottleneck"),
    MetricSpec("sendbox_drops", unit="packets", direction="info",
               description="packets dropped at the sendbox (where drops should move)"),
    MetricSpec("out_of_order_fraction", unit="fraction", direction="lower", nullable=True,
               description="epoch measurements arriving out of order (None without Bundler)"),
)


def _run_registered_scenario(*, seed: int, **params) -> Dict[str, object]:
    config = ScenarioConfig(seed=seed, **params)
    return scenario_metrics(run_scenario(config))


register_scenario(
    "fig09_slowdown",
    figure="Figure 9 / §7.2",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="FCT slowdown distribution of the §7.1 workload under a given mode",
    params=SCENARIO_PARAMS,
    metrics=SCENARIO_METRICS,
)(_run_registered_scenario)

register_scenario(
    "fig14_sendbox_cc",
    figure="Figure 14 / §7.2",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Sendbox congestion-control choice (Copa / BasicDelay / BBR) on the §7.1 workload",
    params=SCENARIO_PARAMS.with_defaults(duration_s=12.0),
    metrics=SCENARIO_METRICS,
)(_run_registered_scenario)

register_scenario(
    "fig15_proxy",
    figure="Figure 15 / §7.5",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Idealized TCP-terminating proxy emulation vs plain Bundler",
    params=SCENARIO_PARAMS.with_defaults(mode="proxy", load_fraction=0.8, duration_s=12.0),
    metrics=SCENARIO_METRICS,
)(_run_registered_scenario)

register_scenario(
    "sec74_endhost_cc",
    figure="§7.4 (table)",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Bundler's gains across endhost congestion controllers (Cubic / Reno / BBR)",
    params=SCENARIO_PARAMS.with_defaults(duration_s=10.0),
    metrics=SCENARIO_METRICS,
)(_run_registered_scenario)


def policy_metrics(result: ScenarioResult) -> Dict[str, object]:
    """Metrics for the §7.2 scheduling-policy scenarios.

    Adds what :func:`scenario_metrics` lacks for the policy claims: the
    short-flow (latency-sensitive) median, and the per-priority-class
    medians, split by the same classifier the run's strict-priority qdisc
    used (the scenario's override, or the default <=100 KB boundary).
    """
    from repro.net.trace import percentile

    classifier = result.config.priority_class_for_size or _default_priority_classifier
    analysis = result.fct_analysis()
    short = analysis.short_flow_analysis()
    high = [s for s, size in zip(analysis.slowdowns, analysis.sizes, strict=True) if classifier(size) == 0]
    low = [s for s, size in zip(analysis.slowdowns, analysis.sizes, strict=True) if classifier(size) != 0]
    return {
        "completed": len(analysis),
        "median_slowdown": analysis.median_slowdown() if len(analysis) else None,
        "short_median_slowdown": short.median_slowdown() if len(short) else None,
        "high_class_median_slowdown": percentile(high, 50.0) if high else None,
        "low_class_median_slowdown": percentile(low, 50.0) if low else None,
    }


#: Schema of :func:`policy_metrics` — the §7.2 scheduling-policy claims.
POLICY_METRICS = MetricSchema(
    MetricSpec("completed", unit="count", direction="higher",
               description="post-warm-up flows that completed"),
    MetricSpec("median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median FCT slowdown"),
    MetricSpec("short_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of latency-sensitive short flows"),
    MetricSpec("high_class_median_slowdown", unit="ratio", direction="lower", nullable=True,
               description="median slowdown of the favored priority class"),
    MetricSpec("low_class_median_slowdown", unit="ratio", direction="info", nullable=True,
               description="median slowdown of the deprioritized class"),
)


def _run_policy_scenario(*, seed: int, **params) -> Dict[str, object]:
    config = ScenarioConfig(seed=seed, **params)
    return policy_metrics(run_scenario(config))


register_scenario(
    "sec72_fq_codel",
    figure="§7.2 (text)",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="FQ-CoDel at the sendbox: short-flow latency versus the Status Quo FIFO",
    params=SCENARIO_PARAMS.with_defaults(mode="bundler_fq_codel", duration_s=12.0),
    metrics=POLICY_METRICS,
)(_run_policy_scenario)

register_scenario(
    "sec72_priority",
    figure="§7.2 (text)",
    description="Strict priority at the sendbox: the favored class beats the deprioritized one",
    params=SCENARIO_PARAMS.with_defaults(mode="bundler_prio", duration_s=12.0),
    metrics=POLICY_METRICS,
    # v2: flows now carry their priority class from the first packet; the
    # pre-trace implementation let each flow's initial window out as class
    # 0 before re-classifying it.
    # v3: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=3,
)(_run_policy_scenario)
