"""Figures 5 and 6: accuracy of Bundler's RTT and receive-rate estimates.

The paper validates the epoch-based measurement machinery by comparing, at
each point in time, the sendbox's estimates of the RTT and receive rate with
ground truth observed at the bottleneck router, across 90 traces covering
link delays of {20, 50, 100} ms and bottleneck rates of {24, 48, 96} Mbit/s.
It reports that 80% of RTT estimates fall within 1.2 ms of the actual value
and 80% of the receive-rate estimates within 4 Mbit/s.

Here the ground truth comes from the simulator directly: the true RTT is the
base RTT plus the measured queueing delay at the bottleneck, and the true
receive rate is the bottleneck link's delivered throughput, both sampled on
the same time grid as Bundler's estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core import BundlerConfig, install_bundler
from repro.cc import make_window_cc
from repro.net.simulator import Simulator
from repro.net.topology import build_site_to_site
from repro.net.trace import TimeSeries, percentile
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.runner.spec import expand_grid
from repro.transport.flow import TcpFlow
from repro.util.units import ms_to_s


@dataclass
class EstimateTrace:
    """Estimated-vs-actual series for one (rate, delay) configuration."""

    bottleneck_mbps: float
    rtt_ms: float
    estimated_rtt: TimeSeries
    actual_rtt: TimeSeries
    estimated_recv_rate: TimeSeries
    actual_recv_rate: TimeSeries

    def rtt_errors_ms(self) -> List[float]:
        """Estimate-minus-actual RTT differences (milliseconds) on the estimate grid."""
        errors = []
        for t, est in self.estimated_rtt:
            actual = self.actual_rtt.value_at(t)
            if actual is not None:
                errors.append((est - actual) * 1e3)
        return errors

    def rate_errors_mbps(self) -> List[float]:
        """Estimate-minus-actual receive-rate differences (Mbit/s)."""
        errors = []
        for t, est in self.estimated_recv_rate:
            actual = self.actual_recv_rate.value_at(t)
            if actual is not None:
                errors.append((est - actual) / 1e6)
        return errors


def run_estimate_trace(
    *,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    duration_s: float = 20.0,
    num_flows: int = 4,
    sample_interval_s: float = 0.1,
    sendbox_cc: str = "copa",
) -> EstimateTrace:
    """Run one measurement-accuracy trace."""
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=max(num_flows, 1),
        num_clients=1,
    )
    pair = install_bundler(
        topo,
        BundlerConfig(sendbox_cc=sendbox_cc, scheduler="fifo", enable_nimbus=False),
    )
    flows = [
        TcpFlow(
            sim,
            topo.packet_factory,
            topo.servers[i % len(topo.servers)],
            topo.clients[0],
            size_bytes=None,
            cc=make_window_cc("cubic"),
        ).start()
        for i in range(num_flows)
    ]

    estimated_rtt = TimeSeries()
    estimated_rate = TimeSeries()
    actual_rtt = TimeSeries()
    base_rtt = ms_to_s(rtt_ms)
    bottleneck = topo.bottleneck_link

    def sample() -> None:
        now = sim.now
        state = pair.sendbox.bundles.get(0)
        if state is None:
            return
        measurement = state.measurement.current_measurement(now)
        if measurement is None:
            return
        estimated_rtt.add(now, measurement.rtt)
        estimated_rate.add(now, measurement.recv_rate)
        # Ground truth: base propagation RTT plus the bottleneck's current
        # queueing delay (most recent dequeue's wait).
        queue_delay = bottleneck.monitor.delay.value_at(now) or 0.0
        actual_rtt.add(now, base_rtt + queue_delay)

    sim.every(sample_interval_s, sample)
    sim.run(until=duration_s)
    for flow in flows:
        flow.stop()

    actual_rate = bottleneck.rate_monitor.series_bps()
    return EstimateTrace(
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        estimated_rtt=estimated_rtt,
        actual_rtt=actual_rtt,
        estimated_recv_rate=estimated_rate,
        actual_recv_rate=actual_rate,
    )


def run_estimate_sweep(
    rates_mbps: Sequence[float] = (24.0, 48.0),
    delays_ms: Sequence[float] = (20.0, 50.0, 100.0),
    **kwargs,
) -> List[EstimateTrace]:
    """Run the (rate × delay) sweep used for Figures 5 and 6 (scaled down).

    The cell grid is expanded through the runner's declarative sweep
    machinery, so this function and ``repro-runner sweep`` agree on what the
    figure contains.
    """
    cells = expand_grid({"bottleneck_mbps": rates_mbps, "rtt_ms": delays_ms})
    return [run_estimate_trace(**cell, **kwargs) for cell in cells]


@register_scenario(
    "fig05_fig06_estimates",
    figure="Figures 5-6 / §7.1",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Accuracy of Bundler's epoch-based RTT and receive-rate estimates",
    params=ParamSpace(
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("duration_s", kind="float", default=20.0, unit="s", minimum=1.0,
                  description="run duration"),
        ParamSpec("num_flows", kind="int", default=4, unit="count", minimum=1,
                  description="long-lived flows in the bundle"),
        ParamSpec("sample_interval_s", kind="float", default=0.1, unit="s", minimum=0.001,
                  description="ground-truth sampling interval"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("rtt_error_p80_ms", unit="ms", direction="lower", nullable=True,
                   description="80th-percentile absolute RTT estimate error"),
        MetricSpec("rtt_error_median_ms", unit="ms", direction="lower", nullable=True,
                   description="median absolute RTT estimate error"),
        MetricSpec("rate_error_p80_mbps", unit="Mbit/s", direction="lower", nullable=True,
                   description="80th-percentile absolute receive-rate estimate error"),
        MetricSpec("rate_error_median_mbps", unit="Mbit/s", direction="lower", nullable=True,
                   description="median absolute receive-rate estimate error"),
        MetricSpec("rtt_samples", unit="count", direction="info",
                   description="RTT estimate samples compared"),
        MetricSpec("rate_samples", unit="count", direction="info",
                   description="rate estimate samples compared"),
    ),
    seed_sensitive=False,
)
def _estimates_scenario(*, seed: int, **params):
    # Long-lived flows only — deterministic, so the seed is unused.
    trace = run_estimate_trace(**params)
    rtt_errors = [abs(e) for e in trace.rtt_errors_ms()]
    rate_errors = [abs(e) for e in trace.rate_errors_mbps()]
    return {
        "rtt_error_p80_ms": percentile(rtt_errors, 80.0) if rtt_errors else None,
        "rtt_error_median_ms": percentile(rtt_errors, 50.0) if rtt_errors else None,
        "rate_error_p80_mbps": percentile(rate_errors, 80.0) if rate_errors else None,
        "rate_error_median_mbps": percentile(rate_errors, 50.0) if rate_errors else None,
        "rtt_samples": len(rtt_errors),
        "rate_samples": len(rate_errors),
    }
