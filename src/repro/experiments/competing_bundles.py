"""Figure 13: multiple bundles competing at the same bottleneck.

Two bundles (each a separate site-A network with its own sendbox) share one
in-network bottleneck.  With a 1:1 or 2:1 offered-load split, both bundles
keep their in-network queues small, schedule their own traffic at their own
sendboxes, and improve their median FCT relative to the Status Quo run of
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import BundlerConfig
from repro.core.bundle import source_address_classifier
from repro.core.receivebox import Receivebox
from repro.core.sendbox import Sendbox
from repro.metrics.fct import FctAnalysis
from repro.net.simulator import Simulator
from repro.net.topology import build_competing_bundles
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.util.rng import derive_seed, make_rng
from repro.util.units import mbps_to_bps, ms_to_s
from repro.workload.generators import RequestWorkload


@dataclass
class CompetingBundlesResult:
    """Per-bundle FCT analyses plus shared-bottleneck statistics."""

    load_split: Sequence[float]
    with_bundler: bool
    per_bundle_fct: List[FctAnalysis]
    bottleneck_mean_queue_delay_s: float
    bottleneck_drops: int

    def median_slowdowns(self) -> List[float]:
        return [fct.median_slowdown() for fct in self.per_bundle_fct]


def run_competing_bundles(
    *,
    load_split: Sequence[float] = (0.5, 0.5),
    total_load_fraction: float = 0.875,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    duration_s: float = 15.0,
    with_bundler: bool = True,
    sendbox_cc: str = "copa",
    seed: int = 1,
) -> CompetingBundlesResult:
    """Run the Figure 13 scenario.

    ``load_split`` gives each bundle's share of the total offered load; the
    paper evaluates (0.5, 0.5) ("1:1") and (2/3, 1/3) ("2:1").
    """
    if abs(sum(load_split) - 1.0) > 1e-6:
        raise ValueError("load_split must sum to 1")
    sim = Simulator()
    topo = build_competing_bundles(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        servers_per_bundle=[6] * len(load_split),
    )
    config = BundlerConfig(
        sendbox_cc=sendbox_cc,
        scheduler="sfq",
        enable_nimbus=True,
        initial_rate_bps=mbps_to_bps(bottleneck_mbps) / (2.0 * len(load_split)),
    )
    workloads: List[RequestWorkload] = []
    for idx, bundle_topo in enumerate(topo.bundles):
        if with_bundler:
            classifier = source_address_classifier(s.address for s in bundle_topo.servers)
            Sendbox(
                sim,
                bundle_topo.site_a_edge,
                bundle_topo.sendbox_link,
                topo.packet_factory,
                config=config,
                classifier=classifier,
                receivebox_address=bundle_topo.site_b_edge.address,
            )
            Receivebox(
                sim,
                bundle_topo.site_b_edge,
                topo.packet_factory,
                config=config,
                classifier=classifier,
                sendbox_address=bundle_topo.site_a_edge.address,
            )
        rng = make_rng(derive_seed(seed, f"fig13-bundle{idx}"))
        workloads.append(
            RequestWorkload(
                sim,
                topo.packet_factory,
                bundle_topo.servers,
                bundle_topo.clients,
                offered_load_bps=load_split[idx] * total_load_fraction * mbps_to_bps(bottleneck_mbps),
                rng=rng,
                duration_s=duration_s,
            ).start()
        )
    sim.run(until=duration_s + 3.0)

    analyses = [
        FctAnalysis.from_records(
            w.records(),
            rtt_s=ms_to_s(rtt_ms),
            bottleneck_bps=mbps_to_bps(bottleneck_mbps),
            warmup_s=1.0,
        )
        for w in workloads
    ]
    return CompetingBundlesResult(
        load_split=load_split,
        with_bundler=with_bundler,
        per_bundle_fct=analyses,
        bottleneck_mean_queue_delay_s=topo.shared_bottleneck.monitor.mean_delay() or 0.0,
        bottleneck_drops=topo.shared_bottleneck.packets_dropped,
    )


def _check_load_split(split) -> None:
    if not split:
        raise ValueError("load_split needs at least one bundle share")
    if any(share <= 0.0 for share in split):
        raise ValueError("every load_split share must be positive")


@register_scenario(
    "fig13_competing_bundles",
    figure="Figure 13 / §7.4",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Multiple bundles sharing one bottleneck at a given load split",
    params=ParamSpace(
        ParamSpec("load_split", kind="list[float]", default=[0.5, 0.5], unit="fraction",
                  validator=_check_load_split,
                  description="per-bundle share of the total offered load"),
        ParamSpec("total_load_fraction", kind="float", default=0.875, unit="fraction",
                  minimum=0.05, maximum=1.45,
                  description="total offered load as a fraction of the bottleneck rate"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="shared bottleneck rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("duration_s", kind="float", default=15.0, unit="s", minimum=1.0,
                  description="workload duration"),
        ParamSpec("with_bundler", kind="bool", default=True,
                  description="install a Bundler pair per bundle"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("bottleneck_mean_queue_delay_ms", unit="ms", direction="lower",
                   description="mean queueing delay at the shared bottleneck"),
        MetricSpec("bottleneck_drops", unit="packets", direction="lower",
                   description="packets dropped at the shared bottleneck"),
        MetricSpec("bundle*_median_slowdown", unit="ratio", direction="lower", nullable=True,
                   description="per-bundle median FCT slowdown (one column per bundle)"),
        MetricSpec("bundle*_completed", unit="count", direction="higher",
                   description="per-bundle completed flows (one column per bundle)"),
    ),
)
def _competing_bundles_scenario(*, seed: int, **params):
    result = run_competing_bundles(seed=seed, **params)
    metrics: Dict[str, object] = {
        "bottleneck_mean_queue_delay_ms": result.bottleneck_mean_queue_delay_s * 1e3,
        "bottleneck_drops": result.bottleneck_drops,
    }
    for idx, fct in enumerate(result.per_bundle_fct):
        metrics[f"bundle{idx}_median_slowdown"] = fct.median_slowdown() if len(fct) else None
        metrics[f"bundle{idx}_completed"] = len(fct)
    return metrics
