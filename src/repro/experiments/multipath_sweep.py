"""Figure 7 and §7.6: multipath imbalance and its detection.

When the WAN load-balances a bundle's flows across paths with different
delays, Bundler's epoch measurements interleave samples from different paths
(Figure 7) and a large fraction of congestion ACKs arrive out of order.
§7.6 sweeps bottleneck bandwidth, RTT and path count and finds at most 0.4%
out-of-order measurements on single paths versus at least 20% with 2–32
imbalanced paths — an order-of-magnitude separation that makes the 5%
threshold robust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import BundlerConfig, install_bundler
from repro.core.controller import BundlerMode
from repro.net.simulator import Simulator
from repro.net.topology import build_site_to_site
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.runner.spec import expand_grid
from repro.util.rng import derive_seed, make_rng
from repro.util.units import mbps_to_bps
from repro.workload.generators import RequestWorkload


@dataclass
class MultipathPoint:
    """One configuration of the §7.6 sweep."""

    num_paths: int
    bottleneck_mbps: float
    rtt_ms: float
    out_of_order_fraction: float
    detector_triggered: bool
    final_mode: str


def run_multipath_point(
    *,
    num_paths: int,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    duration_s: float = 15.0,
    load_fraction: float = 0.7,
    path_split_mode: str = "packet",
    delay_spread: float = 2.0,
    seed: int = 1,
    enable_multipath_detection: bool = True,
) -> MultipathPoint:
    """Run one multipath (or single-path) configuration and report the heuristic."""
    sim = Simulator()
    if num_paths == 1:
        path_delays: Optional[Sequence[float]] = None
    else:
        # Imbalanced delays: path i has delay (1 + i * spread / paths) * base.
        base = rtt_ms / 2.0
        path_delays = [base * (1.0 + delay_spread * i / num_paths) for i in range(num_paths)]
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=8,
        num_clients=1,
        num_paths=num_paths,
        path_delay_ms=path_delays,
        path_split_mode=path_split_mode,
    )
    pair = install_bundler(
        topo,
        BundlerConfig(
            sendbox_cc="copa",
            scheduler="sfq",
            enable_nimbus=False,
            enable_multipath_detection=enable_multipath_detection,
            initial_rate_bps=mbps_to_bps(bottleneck_mbps) / 2.0,
        ),
    )
    rng = make_rng(derive_seed(seed, f"multipath-{num_paths}"))
    RequestWorkload(
        sim,
        topo.packet_factory,
        topo.servers,
        topo.clients,
        offered_load_bps=load_fraction * mbps_to_bps(bottleneck_mbps),
        rng=rng,
        duration_s=duration_s,
    ).start()
    sim.run(until=duration_s)

    state = pair.sendbox.bundles.get(0)
    fraction = state.measurement.out_of_order_fraction() if state else 0.0
    controller = state.controller if state else None
    triggered = bool(
        controller and controller.multipath is not None and controller.multipath.lifetime_fraction() > controller.multipath.threshold
    )
    mode = controller.mode.value if controller else BundlerMode.DELAY_CONTROL.value
    return MultipathPoint(
        num_paths=num_paths,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        out_of_order_fraction=fraction,
        detector_triggered=triggered,
        final_mode=mode,
    )


def run_multipath_sweep(
    path_counts: Sequence[int] = (1, 2, 4),
    bottleneck_mbps_values: Sequence[float] = (12.0, 24.0),
    rtt_ms_values: Sequence[float] = (20.0, 50.0),
    **kwargs,
) -> List[MultipathPoint]:
    """The §7.6 sweep over path count, bandwidth and RTT (scaled down)."""
    cells = expand_grid(
        {
            "num_paths": path_counts,
            "bottleneck_mbps": bottleneck_mbps_values,
            "rtt_ms": rtt_ms_values,
        }
    )
    return [run_multipath_point(**cell, **kwargs) for cell in cells]


@register_scenario(
    "fig07_multipath",
    figure="Figure 7 / §7.6",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Out-of-order epoch measurements under imbalanced multipath routing",
    params=ParamSpace(
        ParamSpec("num_paths", kind="int", default=1, unit="count", minimum=1,
                  description="parallel WAN paths between the sites"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="per-path bottleneck rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("duration_s", kind="float", default=15.0, unit="s", minimum=1.0,
                  description="workload duration"),
        ParamSpec("load_fraction", kind="float", default=0.7, unit="fraction",
                  minimum=0.05, maximum=1.45,
                  description="offered load as a fraction of the bottleneck rate"),
        ParamSpec("path_split_mode", kind="str", default="packet", choices=("packet", "flow"),
                  description="ECMP split granularity across the paths"),
        ParamSpec("delay_spread", kind="float", default=2.0, unit="ratio", minimum=1.0,
                  description="delay multiplier between the fastest and slowest path"),
        ParamSpec("enable_multipath_detection", kind="bool", default=True,
                  description="enable the out-of-order multipath detector"),
    ),
    metrics=MetricSchema(
        MetricSpec("out_of_order_fraction", unit="fraction", direction="info",
                   description="epoch measurements arriving out of order"),
        MetricSpec("detector_triggered", kind="bool", direction="info",
                   description="whether the multipath detector fired"),
        MetricSpec("final_mode", kind="str", direction="info",
                   description="controller mode at the end of the run"),
    ),
)
def _multipath_scenario(*, seed: int, **params):
    point = run_multipath_point(seed=seed, **params)
    return {
        "out_of_order_fraction": point.out_of_order_fraction,
        "detector_triggered": point.detector_triggered,
        "final_mode": point.final_mode,
    }


def separation_ratio(points: Sequence[MultipathPoint]) -> float:
    """Ratio of the minimum multipath fraction to the maximum single-path fraction.

    The paper reports roughly two orders of magnitude; anything comfortably
    above 1.0 means a fixed threshold separates the two regimes.
    """
    single = [p.out_of_order_fraction for p in points if p.num_paths == 1]
    multi = [p.out_of_order_fraction for p in points if p.num_paths > 1]
    if not single or not multi:
        raise ValueError("need both single-path and multi-path points")
    max_single = max(single)
    min_multi = min(multi)
    if max_single == 0:
        return float("inf")
    return min_multi / max_single
