"""Ablations of Bundler's design choices (no numbered paper figure).

The paper argues for these choices qualitatively; these scenarios quantify
them so the claims are regression-checked like any figure:

* :data:`ablation_epoch_sampling` — epoch sampling period: quarter-RTT
  spacing (the paper's choice, §4.5) versus sparser sampling, measured on
  the standard §7.1 workload.
* :data:`ablation_pi_gains` — the pass-through PI queue controller's gains
  (§5): settle time to the target standing queue in a closed-loop fluid
  model.  Fully deterministic, so it is registered ``seed_sensitive=False``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.passthrough import PiQueueController
from repro.net.simulator import Simulator
from repro.experiments.scenarios import (
    SCENARIO_METRICS,
    ScenarioConfig,
    run_scenario,
    scenario_metrics,
)
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec


@register_scenario(
    "ablation_epoch_sampling",
    figure="Ablation / §4.5",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Epoch sampling period: quarter-RTT spacing vs sparser sampling",
    params=ParamSpace(
        ParamSpec("epoch_rtt_fraction", kind="float", default=0.25, unit="fraction",
                  minimum=0.01, maximum=4.0,
                  description="epoch sampling period as a fraction of the RTT"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("load_fraction", kind="float", default=0.875, unit="fraction",
                  minimum=0.05, maximum=1.45,
                  description="offered load as a fraction of the bottleneck rate"),
        ParamSpec("duration_s", kind="float", default=10.0, unit="s", minimum=1.0,
                  description="workload duration"),
        ParamSpec("warmup_s", kind="float", default=2.0, unit="s", minimum=0.0,
                  description="leading interval excluded from FCT analysis"),
        ParamSpec("num_servers", kind="int", default=8, unit="count", minimum=1,
                  description="request-serving endhosts behind the sendbox"),
        ParamSpec("max_requests", kind="int", default=None, unit="count", minimum=1,
                  nullable=True,
                  description="request cap (None = run to duration)"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=SCENARIO_METRICS,
)
def _epoch_sampling_scenario(*, seed: int, epoch_rtt_fraction: float, **params):
    config = ScenarioConfig(
        mode="bundler_sfq",
        seed=seed,
        bundler_overrides={"epoch_rtt_fraction": epoch_rtt_fraction},
        **params,
    )
    return scenario_metrics(run_scenario(config))


def pi_settle_time(
    alpha: float,
    beta: float,
    *,
    target_queue_s: float = 0.010,
    tolerance_s: float = 0.002,
    arrival_bps: float = 24e6,
    initial_rate_bps: float = 20e6,
    dt_s: float = 0.01,
    steps: int = 4000,
) -> Optional[float]:
    """Closed-loop fluid-model settle time of the standing-queue controller.

    A constant arrival rate feeds a queue drained at the controller's rate;
    returns the first time the queueing delay stays within ``tolerance_s``
    of the target, or ``None`` if it never settles within the horizon.

    The difference equation is stepped by a :class:`Simulator` timer (one
    event per ``dt_s``) rather than a bare ``for`` loop.  The timer fires at
    drift-free multiples of ``dt_s``, so each step sees exactly the
    ``step * dt_s`` timestamps the plain loop used — metrics are
    byte-identical — while the scenario now exercises (and is benchmarked
    against) the real event loop instead of recording 0 events.
    """
    pi = PiQueueController(
        alpha=alpha, beta=beta, target_queue_s=target_queue_s, min_rate_bps=1e6
    )
    pi.reset(initial_rate_bps)
    sim = Simulator()
    queue_bytes, rate = 0.0, initial_rate_bps
    settle: Optional[float] = None
    step = 0

    def tick() -> None:
        nonlocal queue_bytes, rate, settle, step
        queue_bytes = max(0.0, queue_bytes + (arrival_bps - rate) * dt_s / 8.0)
        queue_delay = queue_bytes * 8.0 / max(rate, 1e6)
        rate = pi.update(step * dt_s, queue_delay, arrival_bps)
        if step > 10 and abs(queue_delay - target_queue_s) < tolerance_s:
            settle = step * dt_s
            timer.cancel()
            return
        step += 1
        if step >= steps:
            timer.cancel()

    timer = sim.every(dt_s, tick, start=0.0)
    sim.run()
    return settle


def _check_strictly_positive(value: float) -> None:
    # PiQueueController rejects alpha == 0; an inclusive minimum cannot
    # express "strictly positive", so the knob table must.
    if value <= 0.0:
        raise ValueError("must be strictly positive")


@register_scenario(
    "ablation_pi_gains",
    figure="Ablation / §5",
    description="Pass-through PI controller gains: fluid-model settle time to the target queue",
    params=ParamSpace(
        ParamSpec("alpha", kind="float", default=10.0, unit="gain",
                  validator=_check_strictly_positive,
                  description="PI proportional gain (strictly positive)"),
        ParamSpec("beta", kind="float", default=10.0, unit="gain", minimum=0.0,
                  description="PI integral gain"),
        ParamSpec("target_queue_s", kind="float", default=0.010, unit="s", minimum=0.0001,
                  description="target standing-queue delay"),
        ParamSpec("tolerance_s", kind="float", default=0.002, unit="s", minimum=0.0001,
                  description="settle tolerance around the target"),
        ParamSpec("arrival_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="constant fluid arrival rate"),
        ParamSpec("horizon_s", kind="float", default=40.0, unit="s", minimum=1.0,
                  description="simulation horizon"),
    ),
    metrics=MetricSchema(
        MetricSpec("settle_time_s", unit="s", direction="lower", nullable=True,
                   description="first time the queue stays within tolerance (None = never)"),
        MetricSpec("settled", kind="bool", direction="higher",
                   description="whether the controller settled within the horizon"),
    ),
    seed_sensitive=False,
)
def _pi_gains_scenario(
    *,
    seed: int,
    alpha: float,
    beta: float,
    target_queue_s: float,
    tolerance_s: float,
    arrival_mbps: float,
    horizon_s: float,
) -> Dict[str, object]:
    # Pure difference equation — deterministic, the seed is unused.
    dt_s = 0.01
    settle = pi_settle_time(
        alpha,
        beta,
        target_queue_s=target_queue_s,
        tolerance_s=tolerance_s,
        arrival_bps=arrival_mbps * 1e6,
        dt_s=dt_s,
        steps=int(horizon_s / dt_s),
    )
    return {"settle_time_s": settle, "settled": settle is not None}
