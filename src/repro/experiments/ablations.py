"""Ablations of Bundler's design choices (no numbered paper figure).

The paper argues for these choices qualitatively; these scenarios quantify
them so the claims are regression-checked like any figure:

* :data:`ablation_epoch_sampling` — epoch sampling period: quarter-RTT
  spacing (the paper's choice, §4.5) versus sparser sampling, measured on
  the standard §7.1 workload.
* :data:`ablation_pi_gains` — the pass-through PI queue controller's gains
  (§5): settle time to the target standing queue in a closed-loop fluid
  model.  Fully deterministic, so it is registered ``seed_sensitive=False``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.passthrough import PiQueueController
from repro.experiments.scenarios import ScenarioConfig, run_scenario, scenario_metrics
from repro.runner.registry import register_scenario


@register_scenario(
    "ablation_epoch_sampling",
    figure="Ablation / §4.5",
    description="Epoch sampling period: quarter-RTT spacing vs sparser sampling",
    defaults=dict(
        epoch_rtt_fraction=0.25,
        bottleneck_mbps=24.0,
        rtt_ms=50.0,
        load_fraction=0.875,
        duration_s=10.0,
        warmup_s=2.0,
        num_servers=8,
        max_requests=None,
        sendbox_cc="copa",
    ),
)
def _epoch_sampling_scenario(*, seed: int, epoch_rtt_fraction: float, **params):
    config = ScenarioConfig(
        mode="bundler_sfq",
        seed=seed,
        bundler_overrides={"epoch_rtt_fraction": epoch_rtt_fraction},
        **params,
    )
    return scenario_metrics(run_scenario(config))


def pi_settle_time(
    alpha: float,
    beta: float,
    *,
    target_queue_s: float = 0.010,
    tolerance_s: float = 0.002,
    arrival_bps: float = 24e6,
    initial_rate_bps: float = 20e6,
    dt_s: float = 0.01,
    steps: int = 4000,
) -> Optional[float]:
    """Closed-loop fluid-model settle time of the standing-queue controller.

    A constant arrival rate feeds a queue drained at the controller's rate;
    returns the first time the queueing delay stays within ``tolerance_s``
    of the target, or ``None`` if it never settles within the horizon.
    """
    pi = PiQueueController(
        alpha=alpha, beta=beta, target_queue_s=target_queue_s, min_rate_bps=1e6
    )
    pi.reset(initial_rate_bps)
    queue_bytes, rate = 0.0, initial_rate_bps
    for step in range(steps):
        queue_bytes = max(0.0, queue_bytes + (arrival_bps - rate) * dt_s / 8.0)
        queue_delay = queue_bytes * 8.0 / max(rate, 1e6)
        rate = pi.update(step * dt_s, queue_delay, arrival_bps)
        if step > 10 and abs(queue_delay - target_queue_s) < tolerance_s:
            return step * dt_s
    return None


@register_scenario(
    "ablation_pi_gains",
    figure="Ablation / §5",
    description="Pass-through PI controller gains: fluid-model settle time to the target queue",
    defaults=dict(
        alpha=10.0,
        beta=10.0,
        target_queue_s=0.010,
        tolerance_s=0.002,
        arrival_mbps=24.0,
        horizon_s=40.0,
    ),
    seed_sensitive=False,
)
def _pi_gains_scenario(
    *,
    seed: int,
    alpha: float,
    beta: float,
    target_queue_s: float,
    tolerance_s: float,
    arrival_mbps: float,
    horizon_s: float,
) -> Dict[str, object]:
    # Pure difference equation — deterministic, the seed is unused.
    dt_s = 0.01
    settle = pi_settle_time(
        alpha,
        beta,
        target_queue_s=target_queue_s,
        tolerance_s=tolerance_s,
        arrival_bps=arrival_mbps * 1e6,
        dt_s=dt_s,
        steps=int(horizon_s / dt_s),
    )
    return {"settle_time_s": settle, "settled": settle is not None}
