"""Cross-traffic experiments (§7.3): Figures 10, 11 and 12.

* :func:`run_phased_cross_traffic` (Figure 10): three consecutive phases —
  no cross traffic, buffer-filling (backlogged Cubic) cross traffic, then
  non-buffer-filling (heavy-tailed request) cross traffic — while the bundle
  carries the standard workload.  The result records per-phase throughput,
  in-network queueing delay, short-flow slowdowns, and the time Bundler
  spent in pass-through mode (the grey shading in the paper's figure).
* :func:`run_short_cross_traffic_sweep` (Figure 11): the bundle offers a
  fixed load while finite, mostly-short cross traffic sweeps its offered
  load upward; compares Status Quo and Bundler FCTs.
* :func:`run_elastic_cross_sweep` (Figure 12): the bundle carries a fixed
  number of backlogged flows against a varying number of competing
  buffer-filling flows; reports the bundle's throughput share (the paper
  measures a 12–22% throughput reduction versus its fair share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import BundlerConfig, install_bundler
from repro.core.controller import BundlerMode
from repro.metrics.fct import FctAnalysis, filter_by_time
from repro.net.simulator import Simulator
from repro.net.topology import SiteToSite, build_site_to_site
from repro.net.trace import TimeSeries
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.runner.spec import expand_grid
from repro.transport.flow import FlowRecord
from repro.util.rng import derive_seed, make_rng
from repro.util.units import mbps_to_bps, ms_to_s
from repro.workload.generators import BackloggedFlows, PacedStreams, RequestWorkload


@dataclass
class PhasedCrossTrafficResult:
    """Outcome of the Figure 10 experiment."""

    phase_boundaries: Sequence[float]
    records: List[FlowRecord]
    bottleneck_queue_delay: TimeSeries
    bundle_throughput: TimeSeries
    mode_history: Optional[TimeSeries]
    pass_through_seconds: float
    config: "PhasedConfig"

    def phase_records(self, phase: int) -> List[FlowRecord]:
        start = self.phase_boundaries[phase]
        end = self.phase_boundaries[phase + 1]
        return filter_by_time(self.records, start, end)

    def phase_fct(self, phase: int) -> FctAnalysis:
        return FctAnalysis.from_records(
            self.phase_records(phase),
            rtt_s=ms_to_s(self.config.rtt_ms),
            bottleneck_bps=mbps_to_bps(self.config.bottleneck_mbps),
        )

    def phase_queue_delay_mean(self, phase: int) -> float:
        start = self.phase_boundaries[phase]
        end = self.phase_boundaries[phase + 1]
        return self.bottleneck_queue_delay.between(start, end).mean() or 0.0


@dataclass
class PhasedConfig:
    """Parameters of the phased cross-traffic experiment."""

    bottleneck_mbps: float = 24.0
    rtt_ms: float = 50.0
    phase_duration_s: float = 20.0
    bundle_load_fraction: float = 0.6
    cross_bulk_flows: int = 1
    cross_load_fraction: float = 0.3
    with_bundler: bool = True
    sendbox_cc: str = "copa"
    seed: int = 1
    num_servers: int = 6


def run_phased_cross_traffic(config: Optional[PhasedConfig] = None) -> PhasedCrossTrafficResult:
    """Run the three-phase cross-traffic scenario of Figure 10."""
    config = config or PhasedConfig()
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=config.bottleneck_mbps,
        rtt_ms=config.rtt_ms,
        num_servers=config.num_servers,
        num_clients=1,
        num_cross_pairs=max(config.cross_bulk_flows, 2),
    )
    pair = None
    if config.with_bundler:
        pair = install_bundler(
            topo,
            BundlerConfig(
                sendbox_cc=config.sendbox_cc,
                scheduler="sfq",
                enable_nimbus=True,
                initial_rate_bps=mbps_to_bps(config.bottleneck_mbps) / 2.0,
            ),
        )

    rng = make_rng(derive_seed(config.seed, "fig10"))
    total = 3 * config.phase_duration_s
    workload = RequestWorkload(
        sim,
        topo.packet_factory,
        topo.servers,
        topo.clients,
        offered_load_bps=config.bundle_load_fraction * mbps_to_bps(config.bottleneck_mbps),
        rng=rng,
        duration_s=total,
    ).start()

    # Phase 2: buffer-filling (backlogged Cubic) cross traffic.
    bulk_pairs = list(zip(topo.cross_senders[: config.cross_bulk_flows],
                          topo.cross_receivers[: config.cross_bulk_flows],
                          strict=True))
    bulk = BackloggedFlows(sim, topo.packet_factory, bulk_pairs, endhost_cc="cubic")
    sim.at(config.phase_duration_s, lambda: bulk.start())
    sim.at(2 * config.phase_duration_s, bulk.stop)

    # Phase 3: non-buffer-filling cross traffic (request workload from the
    # cross hosts, same heavy-tailed distribution).
    cross_rng = make_rng(derive_seed(config.seed, "fig10-cross"))
    cross_requests = RequestWorkload(
        sim,
        topo.packet_factory,
        topo.cross_senders,
        topo.cross_receivers,
        offered_load_bps=config.cross_load_fraction * mbps_to_bps(config.bottleneck_mbps),
        rng=cross_rng,
        duration_s=config.phase_duration_s,
    )
    sim.at(2 * config.phase_duration_s, lambda: cross_requests.start(at=sim.now))

    sim.run(until=total + 3.0)

    mode_history = None
    pass_seconds = 0.0
    if pair is not None:
        state = pair.sendbox.bundles.get(0)
        if state is not None:
            mode_history = state.controller.mode_history
            pass_seconds = state.controller.time_in_mode(BundlerMode.PASS_THROUGH, total)

    return PhasedCrossTrafficResult(
        phase_boundaries=(0.0, config.phase_duration_s, 2 * config.phase_duration_s, total),
        records=workload.records(include_incomplete=True),
        bottleneck_queue_delay=topo.bottleneck_link.monitor.delay,
        bundle_throughput=topo.sendbox_link.rate_monitor.series_bps(),
        mode_history=mode_history,
        pass_through_seconds=pass_seconds,
        config=config,
    )


@dataclass
class CrossSweepPoint:
    """One point of the Figure 11 sweep.

    Slowdown fields are ``None`` when no flows completed after warm-up
    (possible at extreme parameter corners).
    """

    cross_load_mbps: float
    mode: str
    median_slowdown: Optional[float]
    p99_slowdown: Optional[float]
    completed: int


def run_short_cross_point(
    *,
    mode: str,
    cross_load_fraction: float,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    bundle_load_fraction: float = 0.5,
    duration_s: float = 15.0,
    seed: int = 1,
    sendbox_cc: str = "copa",
) -> CrossSweepPoint:
    """One (mode, cross-load) cell of the Figure 11 sweep."""
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=6,
        num_clients=1,
        num_cross_pairs=4,
    )
    if mode == "bundler":
        install_bundler(
            topo,
            BundlerConfig(
                sendbox_cc=sendbox_cc,
                scheduler="sfq",
                enable_nimbus=True,
                initial_rate_bps=mbps_to_bps(bottleneck_mbps) / 2.0,
            ),
        )
    rng = make_rng(derive_seed(seed, f"fig11-{mode}-{cross_load_fraction}"))
    workload = RequestWorkload(
        sim,
        topo.packet_factory,
        topo.servers,
        topo.clients,
        offered_load_bps=bundle_load_fraction * mbps_to_bps(bottleneck_mbps),
        rng=rng,
        duration_s=duration_s,
    ).start()
    cross_rng = make_rng(derive_seed(seed, f"fig11-cross-{mode}-{cross_load_fraction}"))
    RequestWorkload(
        sim,
        topo.packet_factory,
        topo.cross_senders,
        topo.cross_receivers,
        offered_load_bps=cross_load_fraction * mbps_to_bps(bottleneck_mbps),
        rng=cross_rng,
        duration_s=duration_s,
    ).start()
    sim.run(until=duration_s + 3.0)
    analysis = FctAnalysis.from_records(
        workload.records(),
        rtt_s=ms_to_s(rtt_ms),
        bottleneck_bps=mbps_to_bps(bottleneck_mbps),
        warmup_s=1.0,
    )
    return CrossSweepPoint(
        cross_load_mbps=cross_load_fraction * bottleneck_mbps,
        mode=mode,
        median_slowdown=analysis.median_slowdown() if len(analysis) else None,
        p99_slowdown=analysis.percentile_slowdown(99) if len(analysis) else None,
        completed=len(analysis),
    )


def run_short_cross_traffic_sweep(
    *,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    bundle_load_fraction: float = 0.5,
    cross_load_fractions: Sequence[float] = (0.125, 0.25, 0.375),
    modes: Sequence[str] = ("status_quo", "bundler"),
    duration_s: float = 15.0,
    seed: int = 1,
    sendbox_cc: str = "copa",
) -> List[CrossSweepPoint]:
    """Figure 11: bundle FCTs versus increasing short-flow cross-traffic load."""
    cells = expand_grid({"mode": modes, "cross_load_fraction": cross_load_fractions})
    return [
        run_short_cross_point(
            bottleneck_mbps=bottleneck_mbps,
            rtt_ms=rtt_ms,
            bundle_load_fraction=bundle_load_fraction,
            duration_s=duration_s,
            seed=seed,
            sendbox_cc=sendbox_cc,
            **cell,
        )
        for cell in cells
    ]


@dataclass
class ElasticSweepPoint:
    """One point of the Figure 12 sweep."""

    competing_flows: int
    mode: str
    bundle_throughput_mbps: float
    cross_throughput_mbps: float
    fair_share_mbps: float

    @property
    def throughput_vs_fair_share(self) -> float:
        """Bundle throughput relative to its fair share (1.0 = exactly fair)."""
        if self.fair_share_mbps <= 0:
            return 0.0
        return self.bundle_throughput_mbps / self.fair_share_mbps


def run_elastic_cross_point(
    *,
    mode: str,
    competing_flows: int,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    bundle_flows: int = 5,
    duration_s: float = 30.0,
    warmup_s: float = 0.0,
    sendbox_cc: str = "copa",
) -> ElasticSweepPoint:
    """One (mode, competing-flow-count) cell of the Figure 12 sweep.

    ``warmup_s`` excludes the start-up transient from the throughput means:
    Nimbus needs several seconds of epoch measurements before it classifies
    the cross traffic as elastic and switches the bundle to competitive
    mode, and the paper's steady-state comparison should not average over
    that detection window.
    """
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=bundle_flows,
        num_clients=1,
        num_cross_pairs=competing_flows,
    )
    if mode == "bundler":
        install_bundler(
            topo,
            BundlerConfig(
                sendbox_cc=sendbox_cc,
                scheduler="sfq",
                enable_nimbus=True,
                initial_rate_bps=mbps_to_bps(bottleneck_mbps) / 2.0,
            ),
        )
    bundle = BackloggedFlows(
        sim,
        topo.packet_factory,
        [(s, topo.clients[0]) for s in topo.servers],
        endhost_cc="cubic",
    ).start()
    cross = BackloggedFlows(
        sim,
        topo.packet_factory,
        list(zip(topo.cross_senders, topo.cross_receivers, strict=True)),
        endhost_cc="cubic",
    ).start(at=0.5)
    if not 0.0 <= warmup_s < duration_s:
        raise ValueError("warmup must fall within the run")
    at_warmup = {"bundle": 0, "cross": 0}
    sim.at(
        warmup_s,
        lambda: at_warmup.update(
            bundle=bundle.total_bytes_delivered(), cross=cross.total_bytes_delivered()
        ),
    )
    sim.run(until=duration_s)
    span = duration_s - warmup_s
    bundle_mbps = (bundle.total_bytes_delivered() - at_warmup["bundle"]) * 8.0 / span / 1e6
    cross_mbps = (cross.total_bytes_delivered() - at_warmup["cross"]) * 8.0 / span / 1e6
    fair = bottleneck_mbps * bundle_flows / (bundle_flows + competing_flows)
    return ElasticSweepPoint(
        competing_flows=competing_flows,
        mode=mode,
        bundle_throughput_mbps=bundle_mbps,
        cross_throughput_mbps=cross_mbps,
        fair_share_mbps=fair,
    )


def run_elastic_cross_sweep(
    *,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    bundle_flows: int = 5,
    competing_flow_counts: Sequence[int] = (2, 5, 10),
    modes: Sequence[str] = ("status_quo", "bundler"),
    duration_s: float = 30.0,
    warmup_s: float = 0.0,
    sendbox_cc: str = "copa",
) -> List[ElasticSweepPoint]:
    """Figure 12: bundle throughput against persistent buffer-filling cross flows."""
    cells = expand_grid({"mode": modes, "competing_flows": competing_flow_counts})
    return [
        run_elastic_cross_point(
            bottleneck_mbps=bottleneck_mbps,
            rtt_ms=rtt_ms,
            bundle_flows=bundle_flows,
            duration_s=duration_s,
            warmup_s=warmup_s,
            sendbox_cc=sendbox_cc,
            **cell,
        )
        for cell in cells
    ]


# ---------------------------------------------------------------------------
# Runner scenario registrations.

@register_scenario(
    "fig10_phased_cross_traffic",
    figure="Figure 10 / §7.3",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Three cross-traffic phases; Bundler yields during buffer-filling phases",
    params=ParamSpace(
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("phase_duration_s", kind="float", default=20.0, unit="s", minimum=1.0,
                  description="duration of each of the three cross-traffic phases"),
        ParamSpec("bundle_load_fraction", kind="float", default=0.6, unit="fraction",
                  minimum=0.05, maximum=1.45,
                  description="bundle offered load as a fraction of the bottleneck rate"),
        ParamSpec("cross_bulk_flows", kind="int", default=1, unit="count", minimum=0,
                  description="backlogged cross flows during the buffer-filling phase"),
        ParamSpec("cross_load_fraction", kind="float", default=0.3, unit="fraction",
                  minimum=0.0, maximum=1.45,
                  description="paced cross-stream load during the non-elastic phase"),
        ParamSpec("with_bundler", kind="bool", default=True,
                  description="install the Bundler pair"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
        ParamSpec("num_servers", kind="int", default=6, unit="count", minimum=1,
                  description="request-serving endhosts behind the sendbox"),
    ),
    metrics=MetricSchema(
        MetricSpec("pass_through_seconds", unit="s", direction="info",
                   description="time the controller spent yielding in pass-through mode"),
        MetricSpec("phase*_median_slowdown", unit="ratio", direction="lower", nullable=True,
                   description="per-phase median FCT slowdown (one column per phase)"),
        MetricSpec("phase*_queue_delay_ms", unit="ms", direction="lower",
                   description="per-phase mean bottleneck queueing delay"),
    ),
)
def _phased_scenario(*, seed: int, **params):
    result = run_phased_cross_traffic(PhasedConfig(seed=seed, **params))
    metrics = {"pass_through_seconds": result.pass_through_seconds}
    for phase in range(3):
        fct = result.phase_fct(phase)
        metrics[f"phase{phase}_median_slowdown"] = fct.median_slowdown() if len(fct) else None
        metrics[f"phase{phase}_queue_delay_ms"] = result.phase_queue_delay_mean(phase) * 1e3
    return metrics


@register_scenario(
    "fig11_short_cross_traffic",
    figure="Figure 11 / §7.3",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Bundle FCTs under increasing short-flow cross-traffic load",
    params=ParamSpace(
        ParamSpec("mode", kind="str", default="bundler", choices=("status_quo", "bundler"),
                  description="whether the bundle runs under Bundler"),
        ParamSpec("cross_load_fraction", kind="float", default=0.25, unit="fraction",
                  minimum=0.0, maximum=1.45,
                  description="short-flow cross-traffic load as a fraction of the bottleneck"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("bundle_load_fraction", kind="float", default=0.5, unit="fraction",
                  minimum=0.05, maximum=1.45,
                  description="bundle offered load as a fraction of the bottleneck rate"),
        ParamSpec("duration_s", kind="float", default=15.0, unit="s", minimum=1.0,
                  description="workload duration"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("cross_load_mbps", unit="Mbit/s", direction="info",
                   description="offered cross-traffic load"),
        MetricSpec("median_slowdown", unit="ratio", direction="lower", nullable=True,
                   description="bundle median FCT slowdown"),
        MetricSpec("p99_slowdown", unit="ratio", direction="lower", nullable=True,
                   description="bundle 99th-percentile FCT slowdown"),
        MetricSpec("completed", unit="count", direction="higher",
                   description="bundle flows that completed"),
    ),
)
def _short_cross_scenario(*, seed: int, **params):
    point = run_short_cross_point(seed=seed, **params)
    return {
        "cross_load_mbps": point.cross_load_mbps,
        "median_slowdown": point.median_slowdown,
        "p99_slowdown": point.p99_slowdown,
        "completed": point.completed,
    }


@register_scenario(
    "fig12_elastic_cross",
    figure="Figure 12 / §7.3",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Bundle throughput share against persistent buffer-filling cross flows",
    params=ParamSpace(
        ParamSpec("mode", kind="str", default="bundler", choices=("status_quo", "bundler"),
                  description="whether the bundle runs under Bundler"),
        ParamSpec("competing_flows", kind="int", default=5, unit="count", minimum=0,
                  description="persistent buffer-filling cross flows"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("bundle_flows", kind="int", default=5, unit="count", minimum=1,
                  description="backlogged flows inside the bundle"),
        ParamSpec("duration_s", kind="float", default=30.0, unit="s", minimum=1.0,
                  description="run duration"),
        ParamSpec("warmup_s", kind="float", default=5.0, unit="s", minimum=0.0,
                  description="leading interval excluded from throughput accounting"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("bundle_throughput_mbps", unit="Mbit/s", direction="higher",
                   description="steady-state bundle throughput"),
        MetricSpec("cross_throughput_mbps", unit="Mbit/s", direction="info",
                   description="steady-state cross-traffic throughput"),
        MetricSpec("fair_share_mbps", unit="Mbit/s", direction="info",
                   description="the bundle's max-min fair share"),
        MetricSpec("throughput_vs_fair_share", unit="ratio", direction="higher",
                   description="bundle throughput over its fair share"),
    ),
    seed_sensitive=False,
)
def _elastic_cross_scenario(*, seed: int, **params):
    # Backlogged-flow duel: no request arrivals, so the seed is unused.
    point = run_elastic_cross_point(**params)
    return {
        "bundle_throughput_mbps": point.bundle_throughput_mbps,
        "cross_throughput_mbps": point.cross_throughput_mbps,
        "fair_share_mbps": point.fair_share_mbps,
        "throughput_vs_fair_share": point.throughput_vs_fair_share,
    }
