"""Figure 2: Bundler shifts the queue from the bottleneck to the sendbox.

The illustrative experiment of Figure 2 runs a single long-lived flow over
an emulated path and plots the queueing delay at the in-network bottleneck
and at the site edge over time, with and without Bundler.  Without Bundler
the bottleneck queue holds tens of milliseconds of delay and the edge queue
is empty; with Bundler the picture inverts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import BundlerConfig, install_bundler
from repro.cc import make_window_cc
from repro.net.simulator import Simulator
from repro.net.topology import build_site_to_site
from repro.net.trace import TimeSeries
from repro.runner.params import ParamSpec, ParamSpace
from repro.runner.registry import register_scenario
from repro.runner.schema import MetricSchema, MetricSpec
from repro.transport.flow import TcpFlow


@dataclass
class QueueShiftResult:
    """Per-queue delay time series for one run of the Figure 2 experiment."""

    with_bundler: bool
    bottleneck_delay: TimeSeries
    sendbox_delay: TimeSeries
    throughput: TimeSeries
    bottleneck_drops: int

    def mean_bottleneck_delay(self, start: float = 5.0, end: Optional[float] = None) -> float:
        end = end if end is not None else float("inf")
        return self.bottleneck_delay.between(start, end).mean() or 0.0

    def mean_sendbox_delay(self, start: float = 5.0, end: Optional[float] = None) -> float:
        end = end if end is not None else float("inf")
        return self.sendbox_delay.between(start, end).mean() or 0.0


def run_queue_shift(
    *,
    with_bundler: bool,
    bottleneck_mbps: float = 24.0,
    rtt_ms: float = 50.0,
    duration_s: float = 30.0,
    num_flows: int = 2,
    endhost_cc: str = "cubic",
    sendbox_cc: str = "copa",
) -> QueueShiftResult:
    """Run the single-bundle long-flow experiment with or without Bundler."""
    sim = Simulator()
    topo = build_site_to_site(
        sim,
        bottleneck_mbps=bottleneck_mbps,
        rtt_ms=rtt_ms,
        num_servers=max(num_flows, 1),
        num_clients=1,
    )
    if with_bundler:
        install_bundler(
            topo,
            BundlerConfig(
                sendbox_cc=sendbox_cc,
                scheduler="fifo",
                enable_nimbus=False,
                initial_rate_bps=bottleneck_mbps * 1e6 / 2.0,
            ),
        )
    flows = [
        TcpFlow(
            sim,
            topo.packet_factory,
            topo.servers[i % len(topo.servers)],
            topo.clients[0],
            size_bytes=None,
            cc=make_window_cc(endhost_cc),
        ).start()
        for i in range(num_flows)
    ]
    sim.run(until=duration_s)
    for flow in flows:
        flow.stop()
    return QueueShiftResult(
        with_bundler=with_bundler,
        bottleneck_delay=topo.bottleneck_link.monitor.delay,
        sendbox_delay=topo.sendbox_link.monitor.delay,
        throughput=topo.bottleneck_link.rate_monitor.series_bps(),
        bottleneck_drops=topo.bottleneck_link.packets_dropped,
    )


@register_scenario(
    "fig02_queue_shift",
    figure="Figure 2",
    # v2: every() timers compute drift-free tick times (origin + k*interval),
    # shifting control-epoch instants by accumulated float error.
    version=2,
    description="Bundler moves the standing queue from the bottleneck to the sendbox",
    params=ParamSpace(
        ParamSpec("with_bundler", kind="bool", default=True,
                  description="install the Bundler pair at the site edges"),
        ParamSpec("bottleneck_mbps", kind="float", default=24.0, unit="Mbit/s", minimum=1.0,
                  description="bottleneck link rate"),
        ParamSpec("rtt_ms", kind="float", default=50.0, unit="ms", minimum=1.0,
                  description="base round-trip time"),
        ParamSpec("duration_s", kind="float", default=30.0, unit="s", minimum=1.0,
                  description="run duration"),
        ParamSpec("num_flows", kind="int", default=2, unit="count", minimum=1,
                  description="long-lived bulk flows"),
        ParamSpec("endhost_cc", kind="str", default="cubic",
                  choices=("cubic", "reno", "vegas", "bbr", "constant"),
                  description="endhost window congestion controller"),
        ParamSpec("sendbox_cc", kind="str", default="copa",
                  choices=("copa", "basic_delay", "bbr", "constant"),
                  description="bundle-level rate congestion controller"),
    ),
    metrics=MetricSchema(
        MetricSpec("mean_bottleneck_delay_ms", unit="ms", direction="lower",
                   description="mean queueing delay at the bottleneck"),
        MetricSpec("mean_sendbox_delay_ms", unit="ms", direction="info",
                   description="mean queueing delay at the sendbox (where the queue should move)"),
        MetricSpec("bottleneck_drops", unit="packets", direction="lower",
                   description="packets dropped at the bottleneck"),
    ),
    seed_sensitive=False,
)
def _queue_shift_scenario(*, seed: int, **params):
    # The experiment is fully deterministic (long-lived flows, no request
    # arrivals), so the derived seed is accepted but unused.
    result = run_queue_shift(**params)
    return {
        "mean_bottleneck_delay_ms": result.mean_bottleneck_delay() * 1e3,
        "mean_sendbox_delay_ms": result.mean_sendbox_delay() * 1e3,
        "bottleneck_drops": result.bottleneck_drops,
    }
