"""Experiment scenarios reproducing the paper's evaluation.

:mod:`repro.experiments.scenarios` defines :class:`ScenarioConfig` /
:func:`run_scenario`, the workhorse used by most figures: the §7.1
site-to-site setup with a heavy-tailed request workload and a configurable
"mode" (Status Quo, Bundler with various schedulers and inner congestion
controllers, In-Network fair queueing, idealized proxy).

The remaining modules build the more specialised scenarios:

* :mod:`repro.experiments.cross_traffic` — Figures 10, 11 and 12.
* :mod:`repro.experiments.competing_bundles` — Figure 13.
* :mod:`repro.experiments.estimate_accuracy` — Figures 5 and 6.
* :mod:`repro.experiments.multipath_sweep` — Figure 7 and §7.6.
* :mod:`repro.experiments.internet_paths` — Figure 16 / §8.
* :mod:`repro.experiments.queue_shift` — Figure 2.
* :mod:`repro.experiments.ablations` — design-choice ablations (no figure).
* :mod:`repro.experiments.trace_replay` — trace-driven workload scenarios
  (diurnal load, flash crowds, bursty cross traffic) replayed from
  :mod:`repro.traffic` specs; beyond the paper's evaluation.
"""

from repro.experiments.scenarios import (
    ScenarioConfig,
    ScenarioResult,
    policy_metrics,
    run_scenario,
    run_scenarios,
    scenario_metrics,
)
from repro.experiments.ablations import pi_settle_time
from repro.experiments.queue_shift import QueueShiftResult, run_queue_shift
from repro.experiments.estimate_accuracy import EstimateTrace, run_estimate_sweep, run_estimate_trace
from repro.experiments.cross_traffic import (
    PhasedConfig,
    run_elastic_cross_point,
    run_elastic_cross_sweep,
    run_phased_cross_traffic,
    run_short_cross_point,
    run_short_cross_traffic_sweep,
)
from repro.experiments.competing_bundles import run_competing_bundles
from repro.experiments.multipath_sweep import run_multipath_point, run_multipath_sweep, separation_ratio
from repro.experiments.trace_replay import run_trace_replay
from repro.experiments.internet_paths import (
    DEFAULT_REGIONS,
    median_latency_reduction,
    run_internet_paths_study,
    run_region,
)

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
    "scenario_metrics",
    "policy_metrics",
    "pi_settle_time",
    "QueueShiftResult",
    "run_queue_shift",
    "EstimateTrace",
    "run_estimate_trace",
    "run_estimate_sweep",
    "PhasedConfig",
    "run_phased_cross_traffic",
    "run_short_cross_point",
    "run_short_cross_traffic_sweep",
    "run_elastic_cross_point",
    "run_elastic_cross_sweep",
    "run_competing_bundles",
    "run_multipath_point",
    "run_multipath_sweep",
    "run_trace_replay",
    "separation_ratio",
    "DEFAULT_REGIONS",
    "run_region",
    "run_internet_paths_study",
    "median_latency_reduction",
]
