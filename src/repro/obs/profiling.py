"""Profiling entry point: cProfile around one scenario run.

``repro-runner profile <scenario>`` wraps :func:`profile_run`: executes the
cell fresh (no cache) under :mod:`cProfile`, prints the top-N functions by
cumulative time, and optionally dumps the raw stats for ``snakeviz`` /
``pstats`` spelunking.  Profiling is for humans at a terminal — bench
numbers for the perf trajectory come from :mod:`repro.obs.perf`, which runs
*without* the profiler's ~2x interpreter overhead.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Any, Mapping, Optional, TextIO, Tuple

#: pstats sort keys accepted by ``repro-runner profile --sort``.
SORT_CHOICES = ("cumulative", "tottime", "ncalls")


def profile_run(
    scenario: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: int = 1,
    *,
    top: int = 25,
    sort: str = "cumulative",
    out: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> Tuple[Any, str]:
    """Profile one fresh scenario run; returns ``(RunResult, report_text)``.

    ``out`` additionally dumps the raw profile in ``pstats`` format.  The
    report is also written to ``stream`` when given (the CLI passes
    ``sys.stdout``).
    """
    from repro.runner.engine import execute_run
    from repro.runner.registry import load_builtin_scenarios
    from repro.runner.spec import RunSpec

    if sort not in SORT_CHOICES:
        raise ValueError(f"unknown sort {sort!r}; expected one of {SORT_CHOICES}")
    registry = load_builtin_scenarios()
    spec = RunSpec(scenario=scenario, params=params or {}, seed=seed)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = execute_run(spec, registry=registry)
    finally:
        profiler.disable()
    if out:
        profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    report = buffer.getvalue()
    if stream is not None:
        header = [f"profile: {spec.describe()}"]
        telemetry = result.telemetry
        if telemetry:
            header.append(
                f"{telemetry.get('events_processed', 0):,} events in "
                f"{telemetry.get('wall_s', 0.0):.2f}s wall "
                f"(profiler overhead included; bench numbers come from "
                f"'repro-runner perf run')"
            )
        print("\n".join(header), file=stream)
        stream.write(report)
        if out:
            print(f"raw pstats dump written to {out}", file=stream)
    return result, report


def _main(argv=None) -> int:
    """Minimal direct entry (``python -m repro.obs.profiling fig02...``);
    the full-featured front end is ``repro-runner profile``."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.obs.profiling")
    parser.add_argument("scenario")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--sort", choices=SORT_CHOICES, default="cumulative")
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    profile_run(
        args.scenario, seed=args.seed, top=args.top, sort=args.sort,
        out=args.out, stream=sys.stdout,
    )
    return 0


if __name__ == "__main__":
    sys.exit(_main())
