"""repro.obs — always-on, near-zero-overhead observability.

Four layers (see ``docs/observability.md`` for the full catalogue):

* **hot-path counters** — :class:`~repro.obs.stats.SimStats`, the
  ``__slots__`` struct every simulator owns, fed inline by the event loop;
  links, qdiscs, transports, and sendboxes are registered with their
  simulator and their existing counters are folded in at snapshot time
  (zero added work per packet);
* **phase timing** — :class:`~repro.obs.timeline.Timeline` spans collected
  per run by :class:`~repro.obs.collect.TelemetryCollector` and attached to
  ``RunResult.telemetry``, which flows through the cache envelope, the
  manifest, sweep summaries, exports, and distributed workers'
  ``WorkOutcome`` frames;
* **in-simulation probes** — :class:`~repro.obs.probe.ProbeSet` samples
  per-link backlog/utilization, per-qdisc backlog, per-flow cwnd/rate and
  sendbox epoch state on the simulator's deterministic tick grid into
  bounded rings (with mergeable :mod:`~repro.obs.sketch` quantile
  sketches), exported as Chrome/Perfetto traces by
  :mod:`repro.obs.export_trace` (``repro-runner trace-export``) and as
  long-format CSV/JSONL by ``report --timeseries``;
* **the perf trajectory** — :mod:`repro.obs.perf` runs every registered
  scenario at pinned params/seeds, writes ``BENCH_<scenario>.json``
  baselines, and ``repro-runner perf compare`` gates CI on events/sec
  regressions; :mod:`repro.obs.profiling` wraps cProfile for
  ``repro-runner profile``.

Telemetry is metrics-*about*-the-run, never metrics-*of*-the-run: cache
keys and result bytes are identical with the layer on or off
(``REPRO_OBS=0`` disables collection; ``tests/test_obs_parity.py``
enforces the parity).
"""

from repro.obs.collect import (
    OBS_ENV,
    TELEMETRY_FORMAT,
    TelemetryCollector,
    collect,
    current_collector,
    obs_enabled,
    span,
    timed_iter,
)
from repro.obs.probe import (
    PROBE_FORMAT,
    PROBES_ENV,
    EventRing,
    ProbeSet,
    SeriesRing,
    probes_enabled,
)
from repro.obs.sketch import FixedHistogram, MergeableCounter, QuantileSketch
from repro.obs.stats import SimStats, merge_counters, simulator_counters
from repro.obs.timeline import Timeline

__all__ = [
    "OBS_ENV",
    "PROBES_ENV",
    "PROBE_FORMAT",
    "TELEMETRY_FORMAT",
    "EventRing",
    "FixedHistogram",
    "MergeableCounter",
    "ProbeSet",
    "QuantileSketch",
    "SeriesRing",
    "SimStats",
    "TelemetryCollector",
    "Timeline",
    "collect",
    "current_collector",
    "merge_counters",
    "obs_enabled",
    "probes_enabled",
    "simulator_counters",
    "span",
    "timed_iter",
]
