"""Chrome/Perfetto ``trace_event`` export of in-simulation probe data.

Turns the probe payload riding a run's telemetry envelope
(:mod:`repro.obs.probe`) into the JSON object format consumed by
``ui.perfetto.dev`` and ``chrome://tracing``:

* every probe *series* becomes a **counter track** (``ph: "C"``) — queue
  backlog, link utilization, cwnd, bundle rate — one sample per retained
  point, timestamped in microseconds of simulated time;
* every probe *event stream* becomes an **instant** track (``ph: "i"``) —
  packet drops and epoch boundaries at their exact instants;
* every flow becomes a **complete span** (``ph: "X"``) from its start to
  its completion (or the end of the run), grouped one flow per thread row
  so concurrent flows stack;
* simulators map to processes (``pid``), named via metadata events.

The emitted object is self-describing (``otherData`` carries the scenario,
params, seed, and cache key) and validated by :func:`validate_trace` — a
code-level JSON schema check CI runs on the exported artifact.  CLI:
``repro-runner trace-export <scenario>``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

#: Phases this exporter emits (a subset of the trace_event spec).
_COUNTER, _INSTANT, _SPAN, _METADATA = "C", "i", "X", "M"

#: Microseconds per simulated second (trace_event timestamps are µs).
_US = 1_000_000


def _us(t: float) -> int:
    return int(round(t * _US))


def build_trace(result) -> Dict[str, Any]:
    """Build a trace_event JSON object from a :class:`RunResult`.

    Requires the result to carry probe telemetry — run with
    ``REPRO_PROBES`` (and ``REPRO_OBS``) enabled, as the CLI does.
    """
    probes = (result.telemetry or {}).get("probes")
    if not probes or not probes.get("simulators"):
        raise ValueError(
            f"run {result.scenario!r} carries no probe telemetry; re-run with "
            f"REPRO_OBS=1 and REPRO_PROBES=1 (repro-runner trace-export does "
            f"this automatically)"
        )
    events: List[Dict[str, Any]] = []
    for sim_snapshot in probes["simulators"]:
        pid = int(sim_snapshot.get("sim", 0))
        events.append(
            {
                "ph": _METADATA,
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{result.scenario} sim{pid}"},
            }
        )
        for series in sim_snapshot.get("series", []):
            name = series["name"]
            unit = series.get("unit", "")
            label = f"{name} [{unit}]" if unit else name
            for t, v in zip(series.get("t", []), series.get("v", [])):
                events.append(
                    {
                        "ph": _COUNTER,
                        "name": label,
                        "pid": pid,
                        "tid": 0,
                        "ts": _us(t),
                        "args": {"value": v},
                    }
                )
        for stream in sim_snapshot.get("events", []):
            for t in stream.get("t", []):
                events.append(
                    {
                        "ph": _INSTANT,
                        "name": stream["name"],
                        "pid": pid,
                        "tid": 0,
                        "ts": _us(t),
                        "s": "p",
                    }
                )
        for tid, span in enumerate(sim_snapshot.get("spans", []), start=1):
            events.append(
                {
                    "ph": _METADATA,
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span["name"]},
                }
            )
            events.append(
                {
                    "ph": _SPAN,
                    "name": span["name"],
                    "cat": "flow",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(span["t0"]),
                    "dur": max(_us(span["t1"]) - _us(span["t0"]), 0),
                    "args": {"complete": bool(span.get("complete"))},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scenario": result.scenario,
            "params": dict(result.params),
            "seed": result.seed,
            "run_key": result.key,
            "probe_interval_s": probes.get("interval_s"),
        },
    }


#: The shape :func:`validate_trace` enforces, stated as data for docs/CI.
TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "name", "pid"],
                "properties": {
                    "ph": {"enum": [_COUNTER, _INSTANT, _SPAN, _METADATA]},
                    "name": {"type": "string"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "integer", "minimum": 0},
                    "dur": {"type": "integer", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


def validate_trace(trace: Mapping[str, Any]) -> List[str]:
    """Check ``trace`` against :data:`TRACE_SCHEMA`; returns problem list.

    A dependency-free structural validator (the container has no
    ``jsonschema``): empty list means the trace is loadable by Perfetto's
    JSON importer.
    """
    errors: List[str] = []
    if not isinstance(trace, Mapping):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("displayTimeUnit must be 'ms' or 'ns'")
    for index, event in enumerate(events):
        if len(errors) >= 50:
            errors.append("... (more problems suppressed)")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in (_COUNTER, _INSTANT, _SPAN, _METADATA):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if ph != _METADATA:
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                errors.append(f"{where}: missing non-negative integer ts")
        if ph == _COUNTER:
            args = event.get("args")
            if not isinstance(args, Mapping) or not args:
                errors.append(f"{where}: counter event needs a non-empty args dict")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                errors.append(f"{where}: counter args must be numeric")
        if ph == _SPAN:
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: span needs a non-negative integer dur")
        if ph == _INSTANT and event.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope must be one of t/p/g")
    return errors


def trace_summary(trace: Mapping[str, Any]) -> Dict[str, int]:
    """Headline counts for CLI output: tracks, samples, instants, spans."""
    counters: set = set()
    instants: set = set()
    samples = spans = instant_count = 0
    for event in trace.get("traceEvents", []):
        ph = event.get("ph")
        if ph == _COUNTER:
            counters.add((event.get("pid"), event.get("name")))
            samples += 1
        elif ph == _INSTANT:
            instants.add((event.get("pid"), event.get("name")))
            instant_count += 1
        elif ph == _SPAN:
            spans += 1
    return {
        "counter_tracks": len(counters),
        "counter_samples": samples,
        "instant_streams": len(instants),
        "instants": instant_count,
        "spans": spans,
    }


def write_trace(trace: Mapping[str, Any], path: str) -> None:
    """Write the trace JSON (stable key order, newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
