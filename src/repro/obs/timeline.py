"""Span-style phase timing for a run.

A :class:`Timeline` is a tiny monotonic-clock accumulator: named spans are
opened and closed around the phases of a run (``scenario-body``,
``workload-generate``, ``trace-replay``, ``metrics-finalize``, ...) and
each name accumulates a call count and total wall seconds.  It is *not* a
tracing system — there is no nesting, no per-span records, no ids — because
the question it answers is only "where did this run's wall time go", and a
flat ``{name: (count, total_s)}`` table answers that in a handful of bytes
that travel inside :attr:`RunResult.telemetry`.

Span names are an open vocabulary; the ones the stack emits by default are
catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Any, Dict, Iterator


class Timeline:
    """Named wall-time accumulators with a context-manager span API."""

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        # name -> [count, total_seconds]; a plain list keeps the hot
        # ``add`` path to two attribute-free item writes.
        self._spans: Dict[str, list] = {}

    def add(self, name: str, seconds: float) -> None:
        """Fold ``seconds`` into the span called ``name``."""
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block into ``name`` (monotonic clock)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    def wrap_iter(self, name: str, iterator) -> Iterator[Any]:
        """Yield from ``iterator``, charging time spent *pulling* items.

        Used to meter lazily-generated workload streams (trace generators
        are consumed one event at a time during replay, so there is no
        single "generate" block to wrap).
        """
        iterator = iter(iterator)
        while True:
            started = perf_counter()
            try:
                item = next(iterator)
            except StopIteration:
                self.add(name, perf_counter() - started)
                return
            self.add(name, perf_counter() - started)
            yield item

    def __len__(self) -> int:
        return len(self._spans)

    def __contains__(self, name: str) -> bool:
        return name in self._spans

    def total_s(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 when never opened)."""
        entry = self._spans.get(name)
        return entry[1] if entry is not None else 0.0

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable ``{name: {count, total_s}}`` view."""
        return {
            name: {"count": entry[0], "total_s": round(entry[1], 6)}
            for name, entry in sorted(self._spans.items())
        }
