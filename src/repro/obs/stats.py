"""Hot-path counters for the simulation core.

:class:`SimStats` is the struct every :class:`~repro.net.simulator.Simulator`
owns: plain int/float fields behind ``__slots__``, incremented inline by the
event loop (one integer add per scheduled/fired event — cheap enough to be
always on).  Everything else — per-qdisc-class enqueue/dequeue/drop counts,
per-link bytes drained, transport retransmits, bundler epochs — is *not*
counted on the hot path at all: links, flows, and sendboxes already keep
their own counters for the paper's metrics, so the observability layer
simply registers those components with their simulator and folds their
counters into a snapshot dict **after** the run.  Zero added work per
packet; one dict walk per run.

:func:`simulator_counters` produces the per-simulator snapshot and
:func:`merge_counters` folds several simulators' snapshots into one (a
scenario may build more than one simulation — e.g. a baseline and a
bundler run inside the same cell).
"""

from __future__ import annotations

from typing import Any, Dict, List


class SimStats:
    """Event-loop counters owned by one simulator.

    ``events_scheduled`` counts heap pushes, ``events_processed`` counts
    callbacks actually fired (cancelled tokens are popped but skipped and
    show up in ``events_cancelled``; work a batched datapath inlines
    instead of queueing is counted here too, so counts stay comparable
    across scheduler refactors), ``events_pending`` is the exact number of
    live events still queued when the last :meth:`Simulator.run` returned,
    ``run_wall_s`` is wall-clock time spent inside :meth:`Simulator.run`,
    and ``sim_time_s`` is the final simulated clock — together they give
    events/sec and the sim-time speedup every run reports.
    """

    __slots__ = (
        "events_scheduled",
        "events_processed",
        "events_cancelled",
        "events_pending",
        "run_calls",
        "run_wall_s",
        "sim_time_s",
    )

    def __init__(self) -> None:
        self.events_scheduled = 0
        self.events_processed = 0
        self.events_cancelled = 0
        self.events_pending = 0
        self.run_calls = 0
        self.run_wall_s = 0.0
        self.sim_time_s = 0.0

    @property
    def events_per_sec(self) -> float:
        """Callbacks fired per wall second inside the event loop."""
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.events_processed / self.run_wall_s

    @property
    def speedup(self) -> float:
        """Simulated seconds per wall second (how far ahead of real time)."""
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.sim_time_s / self.run_wall_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "events_cancelled": self.events_cancelled,
            "events_pending": self.events_pending,
            "run_calls": self.run_calls,
            "run_wall_s": round(self.run_wall_s, 6),
            "sim_time_s": round(self.sim_time_s, 9),
        }


def qdisc_class_counters(links) -> Dict[str, Dict[str, int]]:
    """Enqueue/dequeue/drop totals grouped by qdisc class across ``links``.

    Qdiscs are discovered from the links *at snapshot time* (not at
    construction) because control planes swap a link's qdisc after the
    link exists — the Bundler sendbox replaces the egress FIFO with its
    token bucket, which itself wraps the scheduling policy.  Nested
    disciplines come from :meth:`repro.qdisc.base.Qdisc.walk`, the same
    chain the probe layer samples backlog from.
    """
    qdiscs: List[Any] = []
    for link in links:
        qdisc = getattr(link, "qdisc", None)
        if qdisc is not None:
            qdiscs.extend(qdisc.walk())
    grouped: Dict[str, Dict[str, int]] = {}
    for qdisc in qdiscs:
        name = type(qdisc).__name__
        bucket = grouped.get(name)
        if bucket is None:
            bucket = grouped[name] = {
                "instances": 0,
                "enqueued": 0,
                "dequeued": 0,
                "dropped": 0,
            }
        bucket["instances"] += 1
        bucket["enqueued"] += getattr(qdisc, "enqueued_packets", 0)
        bucket["dequeued"] += getattr(qdisc, "dequeued_packets", 0)
        bucket["dropped"] += getattr(qdisc, "dropped_packets", 0)
    return grouped


def simulator_counters(sim) -> Dict[str, Any]:
    """One simulator's full counter snapshot (JSON-serializable).

    Reads the simulator's :class:`SimStats` plus the counters of every
    component registered via ``observe_link`` / ``observe_flow`` /
    ``observe_bundle`` — all passive reads, nothing on the hot path.
    """
    links = sim.observed_links
    flows = sim.observed_flows
    bundles = sim.observed_bundles
    counters: Dict[str, Any] = dict(sim.stats.as_dict())
    counters["qdiscs"] = qdisc_class_counters(links)
    counters["links"] = {
        "count": len(links),
        "bytes_sent": sum(link.bytes_sent for link in links),
        "packets_sent": sum(link.packets_sent for link in links),
        "packets_dropped": sum(link.packets_dropped for link in links),
    }
    tcp = [f for f in flows if hasattr(f, "retransmissions")]
    udp = [f for f in flows if not hasattr(f, "retransmissions")]
    counters["transports"] = {
        "tcp_senders": len(tcp),
        "tcp_packets_sent": sum(f.packets_sent for f in tcp),
        "retransmits": sum(f.retransmissions for f in tcp),
        "timeouts": sum(f.timeouts for f in tcp),
        "udp_streams": len(udp),
        "udp_packets_sent": sum(getattr(f, "packets_sent", 0) for f in udp),
    }
    counters["bundler"] = {
        "sendboxes": len(bundles),
        "bundles": sum(len(box.bundles) for box in bundles),
        "epoch_updates": sum(
            state.epoch_updates_sent
            for box in bundles
            for state in box.bundles.values()
        ),
    }
    return counters


def merge_counters(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold several simulators' snapshots into one run-level snapshot.

    Numeric leaves sum; nested dicts merge recursively.  Derived ratios
    (events/sec, speedup) are recomputed by the caller from the summed
    fields, never summed themselves.
    """

    def fold(target: Dict[str, Any], source: Dict[str, Any]) -> None:
        for key, value in source.items():
            if isinstance(value, dict):
                fold(target.setdefault(key, {}), value)
            else:
                target[key] = target.get(key, 0) + value

    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        fold(merged, snapshot)
    # Re-round the float fields the fold may have accumulated noisily.
    if "run_wall_s" in merged:
        merged["run_wall_s"] = round(merged["run_wall_s"], 6)
    if "sim_time_s" in merged:
        merged["sim_time_s"] = round(merged["sim_time_s"], 9)
    return merged
