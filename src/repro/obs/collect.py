"""Run-scoped telemetry collection.

The engine opens a :class:`TelemetryCollector` around each scenario
execution; every :class:`~repro.net.simulator.Simulator` built while it is
active registers itself (one thread-local lookup at construction — the only
cost the layer adds outside the event loop's integer counters).  When the
run finishes, :meth:`TelemetryCollector.snapshot` folds the simulators'
counters and the phase :class:`~repro.obs.timeline.Timeline` into the plain
dict that becomes :attr:`RunResult.telemetry`.

The collector is deliberately *about* the run, never *of* it: nothing here
feeds back into simulation behavior, and the engine attaches the snapshot
outside the result's canonical payload, so cache keys and result bytes are
byte-identical whether the layer is on or off (``tests/test_obs_parity.py``
pins this).  Set ``REPRO_OBS=0`` to disable collection entirely — runs then
produce an empty telemetry dict.
"""

from __future__ import annotations

import contextlib
import os
import threading
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.probe import PROBE_FORMAT, ProbeSet, probes_enabled
from repro.obs.stats import merge_counters, simulator_counters
from repro.obs.timeline import Timeline

#: Environment kill-switch: set to ``0`` / ``false`` / ``off`` to disable
#: telemetry collection (counters still tick — they are part of the
#: simulator — but nothing is snapshotted or attached to results).
OBS_ENV = "REPRO_OBS"

#: Version of the telemetry dict layout attached to results.
TELEMETRY_FORMAT = 1

_active = threading.local()


def obs_enabled() -> bool:
    """Whether telemetry collection is enabled (default: yes)."""
    return os.environ.get(OBS_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def current_collector() -> Optional["TelemetryCollector"]:
    """The collector active on this thread, or ``None``."""
    return getattr(_active, "collector", None)


class TelemetryCollector:
    """Gathers one run's simulators and phase spans.

    Context-manager protocol: entering installs the collector as the
    thread's active one (stacking — a nested run restores the outer
    collector on exit) and starts the run wall clock.
    """

    def __init__(
        self,
        sanitizer: Optional[Any] = None,
        probes: Optional[bool] = None,
    ) -> None:
        self.timeline = Timeline()
        self.simulators: List[Any] = []
        self.wall_s = 0.0
        self.sanitizer = sanitizer
        self.probes = probes_enabled() if probes is None else probes
        self._started: Optional[float] = None
        self._previous: Optional["TelemetryCollector"] = None

    def register_simulator(self, sim) -> None:
        self.simulators.append(sim)
        if self.probes and getattr(sim, "probe", None) is None:
            # In-simulation time-series probes (repro.obs.probe): pure
            # readers on the every() tick grid, so attaching them never
            # changes result bytes or cache keys.
            sim.probe = ProbeSet(sim)
        if self.sanitizer is not None:
            self.sanitizer.attach(sim)

    def __enter__(self) -> "TelemetryCollector":
        self._previous = current_collector()
        _active.collector = self
        self._started = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._started is not None:
            self.wall_s = perf_counter() - self._started
        _active.collector = self._previous
        self._previous = None

    def snapshot(self) -> Dict[str, Any]:
        """The run's telemetry dict (see ``docs/observability.md``)."""
        counters = merge_counters(
            [simulator_counters(sim) for sim in self.simulators]
        )
        events = counters.get("events_processed", 0)
        sim_wall = counters.get("run_wall_s", 0.0)
        sim_time = counters.get("sim_time_s", 0.0)
        snapshot = {
            "format": TELEMETRY_FORMAT,
            "wall_s": round(self.wall_s, 6),
            "simulators": len(self.simulators),
            "events_processed": events,
            "sim_time_s": sim_time,
            "sim_wall_s": sim_wall,
            "events_per_sec": round(events / sim_wall, 1) if sim_wall > 0 else 0.0,
            "speedup": round(sim_time / sim_wall, 3) if sim_wall > 0 else 0.0,
            "counters": counters,
            "spans": self.timeline.snapshot(),
        }
        probe_sets = [
            sim.probe
            for sim in self.simulators
            if getattr(sim, "probe", None) is not None
        ]
        if probe_sets:
            # Envelope-only like everything else here: probe series never
            # enter the canonical result payload (REPRO_PROBES parity is
            # pinned by tests/test_probes.py).
            snapshot["probes"] = {
                "format": PROBE_FORMAT,
                "interval_s": probe_sets[0].interval_s,
                "simulators": [
                    probe.snapshot(index) for index, probe in enumerate(probe_sets)
                ],
            }
        if self.sanitizer is not None:
            # Envelope-only, like everything else in the telemetry dict:
            # proof the sanitizer engaged, never part of the result payload.
            snapshot["sanitizer"] = self.sanitizer.summary()
        return snapshot


@contextlib.contextmanager
def collect() -> Iterator[Optional[TelemetryCollector]]:
    """Open a collector for the enclosed run; yields ``None`` when disabled.

    With ``REPRO_SANITIZE=1`` a runtime :class:`~repro.analysis.sanitizer.
    Sanitizer` rides along on the collector: every simulator that registers
    is instrumented, and end-of-run conservation is checked on clean exit
    (a run that already raised reports its own error, not a conservation
    echo of it).  The sanitizer works even with ``REPRO_OBS=0`` — a
    collector is still opened to carry it, but the caller sees ``None`` so
    no telemetry is attached.
    """
    from repro.analysis.sanitizer import maybe_sanitizer

    sanitizer = maybe_sanitizer()
    if not obs_enabled():
        if sanitizer is None:
            yield None
            return
        with TelemetryCollector(sanitizer=sanitizer):
            yield None
        sanitizer.finalize()
        return
    with TelemetryCollector(sanitizer=sanitizer) as collector:
        yield collector
    if sanitizer is not None:
        sanitizer.finalize()


@contextlib.contextmanager
def span(name: str) -> Iterator[None]:
    """Time the enclosed block into the active collector's timeline.

    A no-op (beyond one thread-local lookup) when no collector is active,
    so library code can annotate phases unconditionally.
    """
    collector = current_collector()
    if collector is None:
        yield
        return
    with collector.timeline.span(name):
        yield


def timed_iter(name: str, iterator):
    """Meter time spent pulling from ``iterator`` into span ``name``.

    Returns the iterator unchanged when no collector is active, so lazily
    consumed workload streams cost nothing un-instrumented.
    """
    collector = current_collector()
    if collector is None:
        return iterator
    return collector.timeline.wrap_iter(name, iterator)
