"""Mergeable streaming accumulators: quantile sketch, counter, histogram.

The million-flow ROADMAP item needs per-flow statistics without per-flow
lists: a sharded sweep computes p50/p99 on each worker and the scheduler
folds the shards.  That requires accumulators that (a) use bounded memory
however many samples they absorb and (b) *merge* — ``merge(a, b)`` must
equal the sketch built from the concatenated streams, so the fold order
cannot matter.

:class:`QuantileSketch` is a DDSketch-style log-binned sketch: a value
``v > 0`` lands in bin ``ceil(log(v) / log(gamma))`` with
``gamma = (1 + alpha) / (1 - alpha)``, which guarantees every quantile
estimate is within relative error ``alpha`` of the true value.  Bins are a
sparse dict, capped at ``max_bins`` by collapsing the *lowest* bins
together (the same choice DDSketch makes: tail quantiles — the ones worth
reading — keep full accuracy; the collapsed low end degrades first).

Everything here is deliberately exact about determinism: only integer
counts and exact min/max are stored (no running float sum), so ``merge``
is associative and commutative *byte-for-byte* after
:meth:`QuantileSketch.to_json` canonical serialization — pinned by
``tests/test_sketch.py``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default relative-accuracy target: quantile estimates within 5% of the
#: true value.  ``alpha=0.05`` needs ~`log(max/min)/log(1.105)` bins — a
#: 1-byte-to-1-GiB range fits in ~210, under the default cap.
DEFAULT_ALPHA = 0.05

#: Default cap on live bins before the low end collapses.
DEFAULT_MAX_BINS = 256

#: Layout version of the serialized sketch.
SKETCH_FORMAT = 1


class QuantileSketch:
    """DDSketch-style mergeable quantile sketch.

    Guarantee: for any quantile ``q``, :meth:`quantile` returns a value
    within relative error ``alpha`` of the exact ``q``-quantile of the
    inserted values — except for values that fell into collapsed low bins,
    whose estimates degrade toward the collapse boundary (tail quantiles
    are unaffected; the cap only ever merges the *smallest* bins).

    Zero and negative values are supported: zeros in a dedicated counter,
    negatives in a mirrored bin table keyed by magnitude.
    """

    __slots__ = ("alpha", "max_bins", "gamma", "_log_gamma", "count",
                 "zero_count", "bins", "neg_bins", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA, max_bins: int = DEFAULT_MAX_BINS) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.alpha = alpha
        self.max_bins = max_bins
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.zero_count = 0
        self.bins: Dict[int, int] = {}
        self.neg_bins: Dict[int, int] = {}
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- insertion ---------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def add(self, value: float, count: int = 1) -> None:
        """Insert ``value`` (``count`` times)."""
        if count <= 0:
            raise ValueError("count must be positive")
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"cannot sketch non-finite value {value!r}")
        self.count += count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0.0:
            self.zero_count += count
            return
        table = self.bins if value > 0.0 else self.neg_bins
        key = self._key(abs(value))
        table[key] = table.get(key, 0) + count
        if len(table) > self.max_bins:
            self._collapse(table)

    def _collapse(self, table: Dict[int, int]) -> None:
        """Fold the lowest bins together until the cap holds.

        Collapsing into the lowest *surviving* bin keeps every key a valid
        log-bin index, so serialization and merging never need a special
        overflow bucket.
        """
        keys = sorted(table)
        while len(keys) > self.max_bins:
            lowest = keys.pop(0)
            table[keys[0]] = table.get(keys[0], 0) + table.pop(lowest)

    # -- queries -----------------------------------------------------------

    def _value_of_bin(self, key: int, sign: float) -> float:
        # Geometric midpoint of (gamma^(k-1), gamma^k]: the point whose
        # worst-case relative error over the bin is exactly alpha.
        return sign * 2.0 * self.gamma ** key / (self.gamma + 1.0)

    def _ordered_bins(self) -> List[Tuple[float, int]]:
        """(representative value, count) in ascending value order."""
        ordered: List[Tuple[float, int]] = []
        for key in sorted(self.neg_bins, reverse=True):
            ordered.append((self._value_of_bin(key, -1.0), self.neg_bins[key]))
        if self.zero_count:
            ordered.append((0.0, self.zero_count))
        for key in sorted(self.bins):
            ordered.append((self._value_of_bin(key, 1.0), self.bins[key]))
        return ordered

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        seen = 0
        for value, count in self._ordered_bins():
            seen += count
            if seen > rank:
                # Clamp to the exact extrema: the edge bins' midpoints can
                # otherwise stray (slightly) outside the observed range.
                return min(max(value, self.min), self.max)
        return self.max

    def quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)) -> Dict[str, Optional[float]]:
        """Common-percentile summary: ``{"p50": ..., "p90": ..., ...}``."""
        out: Dict[str, Optional[float]] = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = self.quantile(q)
        return out

    # -- merging -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (in place); returns ``self``.

        Requires identical ``(alpha, max_bins)`` — sketches with different
        resolutions do not merge losslessly, so this refuses instead of
        silently degrading.
        """
        if (other.alpha, other.max_bins) != (self.alpha, self.max_bins):
            raise ValueError(
                f"cannot merge sketches with different parameters: "
                f"(alpha={self.alpha}, max_bins={self.max_bins}) vs "
                f"(alpha={other.alpha}, max_bins={other.max_bins})"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        for table, theirs in ((self.bins, other.bins), (self.neg_bins, other.neg_bins)):
            for key, count in theirs.items():
                table[key] = table.get(key, 0) + count
            if len(table) > self.max_bins:
                self._collapse(table)
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (bins as sorted ``[key, count]`` pairs)."""
        return {
            "format": SKETCH_FORMAT,
            "alpha": self.alpha,
            "max_bins": self.max_bins,
            "count": self.count,
            "zero_count": self.zero_count,
            "min": self.min,
            "max": self.max,
            "bins": [[k, self.bins[k]] for k in sorted(self.bins)],
            "neg_bins": [[k, self.neg_bins[k]] for k in sorted(self.neg_bins)],
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-identical for equal sketch state."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSketch":
        if data.get("format") != SKETCH_FORMAT:
            raise ValueError(f"unsupported sketch format {data.get('format')!r}")
        sketch = cls(alpha=data["alpha"], max_bins=data["max_bins"])
        sketch.count = int(data["count"])
        sketch.zero_count = int(data["zero_count"])
        sketch.min = data["min"]
        sketch.max = data["max"]
        sketch.bins = {int(k): int(c) for k, c in data["bins"]}
        sketch.neg_bins = {int(k): int(c) for k, c in data["neg_bins"]}
        return sketch


class MergeableCounter:
    """A nested counter tree that merges by summing numeric leaves.

    The class-shaped sibling of :func:`repro.obs.stats.merge_counters`,
    for accumulator pipelines that fold shard results incrementally.
    """

    __slots__ = ("values",)

    def __init__(self, values: Optional[Dict[str, Any]] = None) -> None:
        self.values: Dict[str, Any] = dict(values or {})

    def add(self, key: str, amount: float = 1) -> None:
        self.values[key] = self.values.get(key, 0) + amount

    def merge(self, other: "MergeableCounter") -> "MergeableCounter":
        from repro.obs.stats import merge_counters

        self.values = merge_counters([self.values, other.values])
        return self

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.values)


class FixedHistogram:
    """A histogram over explicit bin edges, mergeable with identical edges.

    Cheaper and exactly reproducible where the value range is known up
    front (e.g. epoch sizes bounded by config); use
    :class:`QuantileSketch` when it is not.
    """

    __slots__ = ("edges", "counts", "count")

    def __init__(self, edges: Sequence[float]) -> None:
        if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be at least two strictly increasing values")
        self.edges = tuple(float(e) for e in edges)
        # counts[0] = below edges[0]; counts[i] = [edges[i-1], edges[i]);
        # counts[-1] = at/above edges[-1].
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0

    def add(self, value: float, count: int = 1) -> None:
        self.count += count
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value < self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += count

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different bin edges")
        self.count += other.count
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"edges": list(self.edges), "counts": list(self.counts), "count": self.count}
