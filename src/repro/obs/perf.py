"""Perf-trajectory harness: pinned benchmark runs and regression gates.

Every registered scenario gets one *bench profile* — a reduced-scale,
pinned parameterization (and pinned seed) chosen so a run takes seconds,
not minutes, while still exercising the scenario's real hot path.  Running
the harness produces one ``BENCH_<scenario>.json`` per scenario: the run's
events/sec, wall time, peak RSS, and full counter snapshot, plus the run
key that identifies exactly which (scenario, version, params, seed) the
numbers were measured at.

The committed ``BENCH_*.json`` files at the repo root are the perf
*trajectory*: every PR that touches the hot path regenerates them, so the
git history of those files is a per-commit performance record.  ``compare``
is the gate — it exits non-zero when a candidate run's events/sec falls
more than ``tolerance`` (default 15%) below the committed baseline, and
when a baseline's run key no longer matches the current pinned profile
(stale baseline — regenerate).

Benchmark runs execute in a subprocess per scenario by default:
``ru_maxrss`` is a process-lifetime high-water mark, so per-scenario peak
RSS is only meaningful from a fresh process.  ``python -m repro.obs.perf
--single NAME`` is that subprocess entry point.

CLI: ``repro-runner perf {run,compare,report}`` (see
``docs/observability.md`` for a walkthrough).
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Version of the BENCH_*.json record layout.
BENCH_FORMAT = 1

#: Benchmark records are ``BENCH_<scenario>.json`` (repo root by default).
BENCH_PREFIX = "BENCH_"

#: All bench runs are pinned to this seed — the numbers in a record are
#: only comparable when produced from identical (params, seed).
BENCH_SEED = 1

#: Default events/sec regression gate: candidate must reach at least
#: ``(1 - tolerance)`` of the baseline's rate.
DEFAULT_TOLERANCE = 0.15

#: Pinned reduced-scale parameter overrides per scenario (missing keys
#: take scenario defaults).  These are deliberately small — a bench run
#: should take seconds — but leave every scenario's mechanism (bundler
#: feedback loop, qdisc, cross traffic, trace replay) fully engaged.
#: Changing a profile invalidates the scenario's committed baseline (the
#: run key no longer matches); regenerate with ``repro-runner perf run``.
PERF_PROFILES: Dict[str, Dict[str, Any]] = {
    "ablation_epoch_sampling": {"duration_s": 5, "warmup_s": 1, "num_servers": 4},
    "ablation_pi_gains": {"horizon_s": 10},
    "fig02_queue_shift": {"duration_s": 8},
    "fig05_fig06_estimates": {"duration_s": 8},
    "fig07_multipath": {"duration_s": 6},
    "fig09_slowdown": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "fig10_phased_cross_traffic": {"phase_duration_s": 5, "num_servers": 4},
    "fig11_short_cross_traffic": {"duration_s": 6},
    "fig12_elastic_cross": {"duration_s": 8, "warmup_s": 2},
    "fig13_competing_bundles": {"duration_s": 6},
    "fig14_sendbox_cc": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "fig15_proxy": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "fig16_internet_paths": {"duration_s": 8, "num_probes": 5, "num_bulk_flows": 3},
    "sec72_fq_codel": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "sec72_priority": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "sec74_endhost_cc": {"duration_s": 6, "warmup_s": 1, "num_servers": 4},
    "trace_bursty_cross": {},
    "trace_diurnal_load": {},
    "trace_flash_crowd": {},
}


def bench_path(scenario: str, out_dir: str = ".") -> str:
    return os.path.join(out_dir, f"{BENCH_PREFIX}{scenario}.json")


def _peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB, if the platform
    exposes it (Linux ``ru_maxrss`` is KiB; macOS reports bytes)."""
    try:
        import resource
    except ImportError:  # non-unix
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def run_bench(scenario: str, *, seed: int = BENCH_SEED) -> Dict[str, Any]:
    """Execute ``scenario`` at its pinned profile and build a bench record.

    Always simulates fresh (no cache involvement) with telemetry forced
    on, whatever ``REPRO_OBS`` says — a bench without counters is useless.
    Probes are the opposite: forced *off* (and refused when explicitly
    enabled), so sampling overhead never reaches a committed baseline;
    every record carries ``"probes": False`` to prove it.
    """
    from repro.obs.collect import OBS_ENV
    from repro.obs.probe import PROBES_ENV, probes_enabled
    from repro.runner.engine import execute_run
    from repro.runner.registry import load_builtin_scenarios
    from repro.runner.spec import RunSpec

    from repro.analysis.sanitizer import SANITIZE_ENV, sanitize_enabled

    if sanitize_enabled():
        # Sanitizer wrappers slow the hot path; a bench recorded with them
        # on would poison the committed BENCH_*.json trajectory.
        raise RuntimeError(
            f"refusing to benchmark with {SANITIZE_ENV} set: sanitizer "
            "overhead must never reach committed perf baselines "
            f"(unset {SANITIZE_ENV} and re-run)"
        )
    if PROBES_ENV in os.environ and probes_enabled():
        # Probes add a periodic sampling timer to every simulator; small
        # (~0.2% events on the bench profiles) but nonzero, so they never
        # belong in a committed baseline either.
        raise RuntimeError(
            f"refusing to benchmark with {PROBES_ENV} explicitly enabled: "
            "probe sampling overhead must never reach committed perf "
            f"baselines (unset {PROBES_ENV} and re-run)"
        )
    if scenario not in PERF_PROFILES:
        raise KeyError(
            f"no perf profile for scenario {scenario!r}; "
            f"add one to repro.obs.perf.PERF_PROFILES"
        )
    registry = load_builtin_scenarios()
    prior_obs = os.environ.get(OBS_ENV)
    prior_probes = os.environ.get(PROBES_ENV)
    os.environ[OBS_ENV] = "1"
    os.environ[PROBES_ENV] = "0"
    try:
        result = execute_run(
            RunSpec(scenario=scenario, params=PERF_PROFILES[scenario], seed=seed),
            registry=registry,
        )
    finally:
        if prior_obs is None:
            os.environ.pop(OBS_ENV, None)
        else:
            os.environ[OBS_ENV] = prior_obs
        if prior_probes is None:
            os.environ.pop(PROBES_ENV, None)
        else:
            os.environ[PROBES_ENV] = prior_probes
    telemetry = result.telemetry
    return {
        "format": BENCH_FORMAT,
        "scenario": scenario,
        "scenario_version": result.scenario_version,
        "params": dict(result.params),
        "seed": seed,
        "run_key": result.key,
        "events_processed": telemetry.get("events_processed", 0),
        "events_per_sec": telemetry.get("events_per_sec", 0.0),
        "wall_s": telemetry.get("wall_s", 0.0),
        "sim_time_s": telemetry.get("sim_time_s", 0.0),
        "speedup": telemetry.get("speedup", 0.0),
        "simulators": telemetry.get("simulators", 0),
        "probes": False,
        "peak_rss_kb": _peak_rss_kb(),
        "counters": telemetry.get("counters", {}),
        "spans": telemetry.get("spans", {}),
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def write_bench(record: Mapping[str, Any], out_dir: str = ".") -> str:
    path = bench_path(record["scenario"], out_dir)
    os.makedirs(out_dir or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("format") != BENCH_FORMAT:
        raise ValueError(f"{path}: unsupported bench record format {record.get('format')!r}")
    return record


def load_bench_dir(directory: str = ".") -> Dict[str, Dict[str, Any]]:
    """All ``BENCH_*.json`` records under ``directory``, by scenario."""
    records: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(directory, f"{BENCH_PREFIX}*.json"))):
        record = load_bench(path)
        records[record["scenario"]] = record
    return records


def run_scenarios(
    scenarios: Sequence[str],
    out_dir: str = ".",
    *,
    seed: int = BENCH_SEED,
    isolate: bool = True,
    log=None,
) -> List[str]:
    """Run the harness for ``scenarios``, writing one BENCH file each.

    ``isolate=True`` (the default) runs each scenario in a fresh
    subprocess so its ``peak_rss_kb`` is a per-scenario high-water mark
    rather than the max over everything run so far in this process.
    """
    from repro.obs.probe import PROBES_ENV, probes_enabled

    if PROBES_ENV in os.environ and probes_enabled():
        # Fail before spawning any subprocess — same contract run_bench
        # enforces, but with a clean message instead of a wrapped one.
        raise RuntimeError(
            f"refusing to benchmark with {PROBES_ENV} explicitly enabled: "
            "probe sampling overhead must never reach committed perf "
            f"baselines (unset {PROBES_ENV} and re-run)"
        )
    paths = []
    for name in scenarios:
        if log:
            log(f"bench {name} ...")
        if isolate:
            path = _run_isolated(name, out_dir, seed=seed)
        else:
            path = write_bench(run_bench(name, seed=seed), out_dir)
        record = load_bench(path)
        if log:
            log(
                f"bench {name}: {record['events_processed']:,} events, "
                f"{record['events_per_sec']:,.0f} events/s, "
                f"{record['wall_s']:.2f}s wall"
            )
        if record.get("events_processed", 0) == 0:
            # A benchmark that processed zero events measures nothing —
            # the pinned profile is broken (wrong param, scenario bypassing
            # the simulator).  Loud, on stderr, regardless of ``log``.
            print(
                f"WARNING: bench {name} processed 0 events — its pinned "
                f"profile exercises no event loop, so its BENCH record "
                f"gates nothing; fix the profile or the scenario",
                file=sys.stderr,
                flush=True,
            )
        paths.append(path)
    return paths


def _run_isolated(scenario: str, out_dir: str, *, seed: int) -> str:
    from repro.runner.backends import inherited_pythonpath

    env = dict(os.environ)
    env["PYTHONPATH"] = inherited_pythonpath()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.obs.perf",
            "--single", scenario, "--seed", str(seed), "--out-dir", out_dir or ".",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench subprocess for {scenario!r} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
        )
    return bench_path(scenario, out_dir)


def compare_benches(
    baseline: Mapping[str, Mapping[str, Any]],
    candidate: Mapping[str, Mapping[str, Any]],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Gate a candidate bench set against a baseline set.

    Returns ``(failures, notes)``.  Failures (any → non-zero exit from the
    CLI): a baseline scenario missing from the candidate, a run-key
    mismatch (the pinned profile or scenario version changed — the
    baseline is stale and must be regenerated), or events/sec below
    ``baseline * (1 - tolerance)``.  Notes are informational: event-count
    drift (deterministic, so a count change means the simulation itself
    changed — expected when a PR touches behavior, and exactly what the
    regenerated baseline should record) and improvements.
    """
    failures: List[str] = []
    notes: List[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        cand = candidate.get(name)
        if cand is None:
            failures.append(f"{name}: missing from candidate run")
            continue
        if cand.get("run_key") != base.get("run_key"):
            failures.append(
                f"{name}: run key changed ({str(base.get('run_key'))[:12]} -> "
                f"{str(cand.get('run_key'))[:12]}); the pinned profile, seed, or "
                f"scenario version moved — regenerate the baseline with "
                f"'repro-runner perf run'"
            )
            continue
        base_events = base.get("events_processed", 0)
        cand_events = cand.get("events_processed", 0)
        if base_events != cand_events:
            notes.append(
                f"{name}: event count drifted {base_events:,} -> {cand_events:,} "
                f"(simulation behavior changed under identical params+seed)"
            )
        base_eps = float(base.get("events_per_sec") or 0.0)
        cand_eps = float(cand.get("events_per_sec") or 0.0)
        if base_eps > 0:
            floor = base_eps * (1.0 - tolerance)
            if cand_eps < floor:
                failures.append(
                    f"{name}: events/sec regressed {base_eps:,.0f} -> {cand_eps:,.0f} "
                    f"({cand_eps / base_eps - 1.0:+.1%}, tolerance -{tolerance:.0%})"
                )
            elif cand_eps > base_eps * (1.0 + tolerance):
                notes.append(
                    f"{name}: events/sec improved {base_eps:,.0f} -> {cand_eps:,.0f} "
                    f"({cand_eps / base_eps - 1.0:+.1%})"
                )
    for name in sorted(candidate):
        if name not in baseline:
            notes.append(f"{name}: new scenario (no baseline yet)")
    return failures, notes


def format_bench_diff(
    baseline: Mapping[str, Mapping[str, Any]],
    candidate: Mapping[str, Mapping[str, Any]],
) -> str:
    """Side-by-side events/sec table for two bench sets (old vs new).

    Purely informational — no gating.  The final row is the geometric mean
    of the per-scenario speedups, the single number quoted when a PR claims
    a simulator-wide win.
    """
    from repro.metrics.reporting import Table

    table = Table(
        ["scenario", "base events/s", "new events/s", "speedup", "base events", "new events"],
        title="perf diff (baseline -> candidate)",
    )
    ratios: List[float] = []
    for name in sorted(set(baseline) | set(candidate)):
        base, cand = baseline.get(name), candidate.get(name)
        base_eps = float(base.get("events_per_sec") or 0.0) if base else 0.0
        cand_eps = float(cand.get("events_per_sec") or 0.0) if cand else 0.0
        if base and cand and base_eps > 0 and cand_eps > 0:
            ratio = cand_eps / base_eps
            ratios.append(ratio)
            speedup = f"{ratio:.2f}x"
        else:
            speedup = "-"
        table.add_row(
            name,
            f"{base_eps:,.0f}" if base else "-",
            f"{cand_eps:,.0f}" if cand else "-",
            speedup,
            f"{base.get('events_processed', 0):,}" if base else "-",
            f"{cand.get('events_processed', 0):,}" if cand else "-",
        )
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        table.add_row("geomean", "", "", f"{geomean:.2f}x", "", "")
    return table.render()


def format_bench_table(records: Iterable[Mapping[str, Any]]) -> str:
    from repro.metrics.reporting import Table

    table = Table(
        ["scenario", "events", "events/s", "wall", "sim time", "speedup", "peak RSS"],
        title="perf benchmarks",
    )
    for record in sorted(records, key=lambda r: r["scenario"]):
        rss = record.get("peak_rss_kb")
        table.add_row(
            record["scenario"],
            f"{record.get('events_processed', 0):,}",
            f"{record.get('events_per_sec', 0.0):,.0f}",
            f"{record.get('wall_s', 0.0):.2f}s",
            f"{record.get('sim_time_s', 0.0):.1f}s",
            f"{record.get('speedup', 0.0):,.1f}x",
            f"{rss / 1024.0:.0f} MiB" if rss else "-",
        )
    return table.render()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Subprocess entry point: ``python -m repro.obs.perf --single NAME``."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.perf",
        description="Run one pinned benchmark in this process (fresh-process "
        "peak RSS); normally invoked by 'repro-runner perf run'.",
    )
    parser.add_argument("--single", required=True, metavar="SCENARIO")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--out-dir", default=".")
    args = parser.parse_args(argv)
    path = write_bench(run_bench(args.single, seed=args.seed), args.out_dir)
    print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
