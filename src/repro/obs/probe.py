"""In-simulation probes: deterministic time-series sampling inside a run.

PR 6's telemetry observes runs from the *outside* — whole-run counters,
wall time, events/sec.  The paper's evidence is time-series behavior
(queue shift at the bundler, rates converging over epochs, phased cross
traffic), so this module watches component state evolve *inside* a run:

* a :class:`ProbeSet` per simulator registers one sampler on the
  simulator's drift-free ``every()`` tick grid per :meth:`Simulator.run`
  call (bounded by the run's ``until``, so probes never keep a drained
  queue alive);
* each tick reads — never mutates — the state components already keep:
  per-link backlog/utilization/drop counters, per-qdisc backlog via the
  O(1) ``backlog_bytes`` contract, per-flow cwnd and delivery rate,
  sendbox rate and epoch size;
* exact-instant hooks (``Link.drop_probe``, ``Sendbox.boundary_probe``)
  record drops and epoch boundaries at the moment they happen, between
  ticks;
* samples land in bounded rings (:class:`SeriesRing`) with
  stride-doubling decimation, and every *pre-decimation* sample also feeds
  a mergeable :class:`~repro.obs.sketch.QuantileSketch` — so million-event
  runs stay flat in RSS while p50/p99 stay exact to the sketch's bound.

Determinism and parity: probe ticks are ordinary heap events with their
own ``seq`` numbers, and the monotone tie-break means inserting them never
reorders the simulation's own events; every callback is a pure read.
Result payloads and cache keys are therefore byte-identical with probes
on or off — ``tests/test_probes.py`` pins this the same way
``tests/test_obs_parity.py`` pins the PR 6 layer.  Probe data rides the
telemetry *envelope* only (``telemetry["probes"]``), governed by
``REPRO_PROBES`` on top of the ``REPRO_OBS`` kill-switch.

Callbacks registered via :meth:`ProbeSet.register_probe` must be
module-level functions or bound methods — no lambdas or local closures
(lint rule RPR012, enforced at registration time too).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch

#: Environment switch for the probe layer (on by default, like REPRO_OBS;
#: probes additionally require REPRO_OBS itself to be enabled, since their
#: output rides the telemetry envelope).
PROBES_ENV = "REPRO_PROBES"

#: Layout version of ``telemetry["probes"]``.
PROBE_FORMAT = 1

#: Default sampling interval: 50 ms — five control intervals, fine enough
#: to render the paper's queue/rate dynamics while keeping probe events
#: well under 1% of a typical run's event count.
DEFAULT_INTERVAL_S = 0.05

#: Hard cap on retained points per series; reaching it halves the retained
#: points and doubles the sampling stride.
DEFAULT_MAX_POINTS = 512

#: Hard cap on recorded instants per event stream (first N kept; the total
#: seen is always recorded).
DEFAULT_MAX_EVENTS = 512

#: Caps on discovered components, so a million-flow run cannot mint a
#: million series.  Truncation is counted, never silent.
MAX_LINKS = 16
MAX_FLOWS = 32
MAX_BUNDLES = 8

#: Relative-accuracy target for the per-series sketches.
SERIES_SKETCH_ALPHA = 0.05


def probes_enabled() -> bool:
    """Whether in-simulation probes are enabled (default: yes)."""
    return os.environ.get(PROBES_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def _is_probe_callback(fn: Callable[..., Any]) -> bool:
    """Module-level function or bound method — the RPR012 contract."""
    name = getattr(fn, "__name__", "")
    qualname = getattr(fn, "__qualname__", name)
    if name == "<lambda>" or "<locals>" in qualname:
        return False
    return True


class SeriesRing:
    """A bounded time series with stride-doubling decimation.

    Keeps sample ``i`` iff ``i % stride == 0``.  When the retained buffer
    reaches ``max_points``, every other retained point is dropped and the
    stride doubles — the invariant ``kept = {i : i % stride == 0}`` is
    preserved exactly, so the retained grid is always uniform and the
    same input stream always decimates identically (deterministic, and
    RSS-bounded however long the run).

    Every sample — including ones decimation skips — feeds the series'
    :class:`~repro.obs.sketch.QuantileSketch`, so quantile summaries see
    the full-resolution stream.
    """

    __slots__ = ("name", "unit", "kind", "max_points", "stride", "seen",
                 "t", "v", "sketch")

    def __init__(
        self,
        name: str,
        *,
        unit: str = "",
        kind: str = "gauge",
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if max_points < 2 or max_points % 2:
            raise ValueError("max_points must be an even number >= 2")
        self.name = name
        self.unit = unit
        self.kind = kind
        self.max_points = max_points
        self.stride = 1
        self.seen = 0
        self.t: List[float] = []
        self.v: List[float] = []
        self.sketch = QuantileSketch(alpha=SERIES_SKETCH_ALPHA)

    def add(self, t: float, value: float) -> None:
        index = self.seen
        self.seen = index + 1
        self.sketch.add(value)
        if index % self.stride:
            return
        self.t.append(t)
        self.v.append(value)
        if len(self.t) >= self.max_points:
            self.t = self.t[::2]
            self.v = self.v[::2]
            self.stride *= 2

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "kind": self.kind,
            "stride": self.stride,
            "seen": self.seen,
            "t": [round(t, 9) for t in self.t],
            "v": list(self.v),
            "quantiles": self.sketch.quantiles(),
            "sketch": self.sketch.to_dict(),
        }


class EventRing:
    """A bounded stream of instants (drop times, epoch boundaries).

    Keeps the first ``max_events`` instants and counts the rest — early
    transients are where the paper's phase plots look, and "first N plus
    the total" is deterministic with zero bookkeeping.
    """

    __slots__ = ("name", "max_events", "seen", "t")

    def __init__(self, name: str, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.name = name
        self.max_events = max_events
        self.seen = 0
        self.t: List[float] = []

    def add(self, t: float) -> None:
        self.seen += 1
        if len(self.t) < self.max_events:
            self.t.append(t)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seen": self.seen,
            "t": [round(t, 9) for t in self.t],
        }


class ProbeSet:
    """All probes attached to one simulator.

    Constructed by the telemetry collector when a simulator registers (and
    probes are enabled); the simulator forwards ``observe_link`` /
    ``observe_flow`` / ``observe_bundle`` registrations here and calls
    :meth:`on_run` at the top of every bounded :meth:`Simulator.run`.
    """

    def __init__(
        self,
        sim,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.sim = sim
        self.interval_s = interval_s
        self.max_points = max_points
        self.series: Dict[str, SeriesRing] = {}
        self.events: Dict[str, EventRing] = {}
        self._links: List[Any] = []
        self._flows: List[Any] = []
        self._bundles: List[Any] = []
        self._flow_last_una: Dict[int, Tuple[float, int]] = {}
        self._link_last_sent: Dict[int, Tuple[float, int]] = {}
        self._custom: List[Tuple[str, Callable[[], float]]] = []
        self._timer = None
        self.truncated = {"links": 0, "flows": 0, "bundles": 0}

    # -- registration ------------------------------------------------------

    def register_probe(
        self,
        name: str,
        callback: Callable[[], float],
        *,
        unit: str = "",
        kind: str = "gauge",
    ) -> SeriesRing:
        """Sample ``callback()`` into series ``name`` every tick.

        ``callback`` must be a module-level function or bound method —
        the runtime counterpart of lint rule RPR012 (lambdas and local
        closures allocate per registration site and capture loop variables
        by reference).
        """
        if not callable(callback):
            raise TypeError(f"probe callback for {name!r} is not callable")
        if not _is_probe_callback(callback):
            raise TypeError(
                f"probe callback for {name!r} must be a module-level function "
                "or bound method, not a lambda or local closure (RPR012)"
            )
        ring = self._series(name, unit=unit, kind=kind)
        self._custom.append((name, callback))
        return ring

    def on_link(self, link) -> None:
        if len(self._links) >= MAX_LINKS:
            self.truncated["links"] += 1
            return
        self._links.append(link)
        # Exact drop instants, not just the per-tick cumulative counter.
        link.drop_probe = self._event(f"link/{link.name}/drop").add

    def on_flow(self, flow) -> None:
        if len(self._flows) >= MAX_FLOWS:
            self.truncated["flows"] += 1
            return
        self._flows.append(flow)

    def on_bundle(self, sendbox) -> None:
        if len(self._bundles) >= MAX_BUNDLES:
            self.truncated["bundles"] += 1
            return
        index = len(self._bundles)
        self._bundles.append(sendbox)
        sendbox.boundary_probe = self._event(f"sendbox/{index}/epoch_boundary").add

    # -- per-run engagement ------------------------------------------------

    def on_run(self, until: Optional[float]) -> None:
        """Arm the sampling timer for one :meth:`Simulator.run` call.

        Unbounded runs (``until=None``) get no timer: a periodic tick with
        no end bound would keep the event queue from ever draining.  The
        timer ends at ``until`` so a finished run leaves at most one dead
        tick behind.
        """
        if until is None or until <= self.sim._now:
            return
        if self._timer is not None:
            self._timer.cancel()
        # A per-run timer is the one legitimate every() outside component
        # setup: it exists exactly for the span of this run() call.
        self._timer = self.sim.every(  # repro: noqa[RPR011] -- armed once per Simulator.run call (not per event), bounded by the run's `until`
            self.interval_s, self._tick, end=until
        )

    # -- sampling ----------------------------------------------------------

    def _series(self, name: str, *, unit: str = "", kind: str = "gauge") -> SeriesRing:
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = SeriesRing(
                name, unit=unit, kind=kind, max_points=self.max_points
            )
        return ring

    def _event(self, name: str) -> EventRing:
        ring = self.events.get(name)
        if ring is None:
            ring = self.events[name] = EventRing(name)
        return ring

    def _tick(self) -> None:
        now = self.sim._now
        interval = self.interval_s
        for link in self._links:
            prefix = f"link/{link.name}"
            self._series(f"{prefix}/backlog_bytes", unit="bytes").add(
                now, link.backlog_bytes
            )
            self._series(f"{prefix}/drops", unit="packets", kind="counter").add(
                now, link.packets_dropped
            )
            last_t, last_sent = self._link_last_sent.get(id(link), (0.0, 0))
            dt = now - last_t
            if dt > 0:
                rate = (link.bytes_sent - last_sent) * 8.0 / dt
                self._series(f"{prefix}/utilization", unit="fraction").add(
                    now, round(rate / link.rate_bps, 9)
                )
            self._link_last_sent[id(link)] = (now, link.bytes_sent)
            # Nested disciplines (the sendbox's TBF wraps the scheduling
            # policy) are walked per tick because control planes install
            # them after link construction.
            for qdisc in link.qdisc.walk():
                self._series(
                    f"{prefix}/qdisc/{type(qdisc).__name__}/backlog_bytes",
                    unit="bytes",
                ).add(now, qdisc.backlog_bytes)
        for flow in self._flows:
            if getattr(flow, "cc", None) is None:
                continue  # paced UDP streams have no window to sample
            prefix = f"flow/{flow.flow_id}"
            self._series(f"{prefix}/cwnd_bytes", unit="bytes").add(
                now, flow.cwnd_bytes
            )
            last_t, last_una = self._flow_last_una.get(flow.flow_id, (0.0, 0))
            dt = now - last_t
            if dt > 0:
                self._series(f"{prefix}/rate_bps", unit="bit/s").add(
                    now, round((flow.snd_una - last_una) * 8.0 / dt, 6)
                )
            self._flow_last_una[flow.flow_id] = (now, flow.snd_una)
        for index, box in enumerate(self._bundles):
            prefix = f"sendbox/{index}"
            self._series(f"{prefix}/rate_bps", unit="bit/s").add(
                now, box.tbf.rate_bps
            )
            self._series(f"{prefix}/backlog_bytes", unit="bytes").add(
                now, box.tbf.backlog_bytes
            )
            for bundle_id in box.bundles:
                self._series(
                    f"{prefix}/bundle/{bundle_id}/epoch_size", unit="packets"
                ).add(now, box.bundles[bundle_id].epoch_controller.current_size)
        for name, callback in self._custom:
            self.series[name].add(now, callback())

    # -- snapshot ----------------------------------------------------------

    def flow_spans(self) -> List[Dict[str, Any]]:
        """One ``{name, t0, t1}`` span per completed-or-armed flow."""
        spans: List[Dict[str, Any]] = []
        for flow in self._flows:
            start = getattr(flow, "start_time", None)
            if start is None:
                continue
            end = getattr(flow, "complete_time", None)
            spans.append(
                {
                    "name": f"flow/{flow.flow_id}",
                    "t0": round(start, 9),
                    "t1": round(end if end is not None else self.sim._now, 9),
                    "complete": end is not None,
                }
            )
        return spans

    def snapshot(self, sim_index: int = 0) -> Dict[str, Any]:
        """This simulator's probe payload for ``telemetry["probes"]``."""
        return {
            "sim": sim_index,
            "interval_s": self.interval_s,
            "series": [self.series[k].snapshot() for k in sorted(self.series)],
            "events": [self.events[k].snapshot() for k in sorted(self.events)],
            "spans": self.flow_spans(),
            "truncated": dict(self.truncated),
        }
