"""Plain-text reporting.

The benchmark harness prints paper-style rows ("configuration → median
slowdown / p99 slowdown") so a run can be compared against the published
numbers at a glance.  :class:`Table` is a tiny fixed-width table formatter
with no external dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class Table:
    """Fixed-width text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append([_format_cell(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_comparison(
    title: str,
    results: Dict[str, Dict[str, float]],
    *,
    metrics: Iterable[str] = ("median", "p99"),
) -> str:
    """Render a {configuration: {metric: value}} mapping as a table."""
    metric_list = list(metrics)
    table = Table(["configuration", *metric_list], title=title)
    for config, values in results.items():
        table.add_row(config, *[values.get(metric, float("nan")) for metric in metric_list])
    return table.render()


def paper_expectation_note(expectation: str, measured: str) -> str:
    """One-line paper-vs-measured note used in benchmark output."""
    return f"paper: {expectation} | measured: {measured}"


def _metric_header(name: str, schema) -> str:
    """Column header for a metric: unit-annotated when the schema knows it."""
    spec = schema.spec_for(name) if schema is not None else None
    if spec is not None and spec.unit:
        return f"{name} [{spec.unit}]"
    return name


def format_run_results(
    results,
    *,
    title: str = "",
    metrics: Optional[Sequence[str]] = None,
    schema=None,
) -> str:
    """Render :class:`repro.runner.result.RunResult` records as a table.

    Only the parameters that actually *vary* across the given results become
    columns (constant parameters would add noise), followed by the seed and
    the selected metrics (default: every metric of the first result — in the
    scenario's :class:`~repro.runner.schema.MetricSchema` order when a
    ``schema`` is given, else sorted; headers are unit-annotated from the
    schema).  Duck-typed on ``.params`` / ``.seed`` / ``.metrics`` so this
    module stays free of runner imports.
    """
    results = list(results)
    if not results:
        return f"{title}\n(no results)" if title else "(no results)"
    param_keys: List[str] = sorted({k for r in results for k in r.params})
    varying = [
        k for k in param_keys
        if len({repr(r.params.get(k)) for r in results}) > 1
    ]
    if metrics is not None:
        metric_keys = list(metrics)
    elif schema is not None:
        metric_keys = schema.column_order(results[0].metrics)
    else:
        metric_keys = sorted(results[0].metrics)
    headers = [_metric_header(m, schema) for m in metric_keys]
    table = Table([*varying, "seed", *headers], title=title)
    for r in results:
        table.add_row(
            *[r.params.get(k) for k in varying],
            r.seed,
            *[r.metrics.get(m, float("nan")) for m in metric_keys],
        )
    return table.render()


def format_aggregate_cells(
    cells,
    *,
    title: str = "",
    metrics: Optional[Sequence[str]] = None,
    schema=None,
) -> str:
    """Render :class:`repro.runner.aggregate.AggregateCell` rows as a table.

    One row per (scenario-implicit) parameter cell; metric columns show
    ``mean ± 95% CI`` across the cell's seeds (bare mean when only one seed
    contributed) and are ordered / unit-annotated by ``schema`` when one is
    given.  Duck-typed on ``.params`` / ``.seeds`` / ``.metrics`` so this
    module stays free of runner imports, mirroring
    :func:`format_run_results`.
    """
    cells = list(cells)
    if not cells:
        return f"{title}\n(no results)" if title else "(no results)"
    param_keys: List[str] = sorted({k for c in cells for k in c.params})
    varying = [
        k for k in param_keys
        if len({repr(c.params.get(k)) for c in cells}) > 1
    ]
    observed = {m: None for c in cells for m in c.metrics}
    if metrics is not None:
        metric_keys = list(metrics)
    elif schema is not None:
        metric_keys = schema.column_order(observed)
    else:
        metric_keys = sorted(observed)
    headers = [_metric_header(m, schema) for m in metric_keys]
    table = Table([*varying, "seeds", *headers], title=title)
    for c in cells:
        table.add_row(
            *[c.params.get(k) for k in varying],
            len(c.seeds),
            *[
                c.metrics[m].describe() if m in c.metrics else "-"
                for m in metric_keys
            ],
        )
    return table.render()
