"""Flow completion time (FCT) and slowdown analysis.

§7.2 uses *median slowdown* as the headline metric: the slowdown of a
request is its completion time divided by what its completion time would
have been on an unloaded network.  The unloaded ("ideal") completion time of
a transfer of ``S`` bytes on a path with round-trip time ``rtt`` and
bottleneck rate ``C`` is modelled as one RTT (request + first response
packet) plus the serialization time of the transfer: ``rtt + 8 S / C``.

Figure 9 buckets requests into three size classes — at most 10 KB, 10 KB to
1 MB, and over 1 MB — and reports the slowdown distribution per class; the
same bucketing is provided here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.trace import percentile
from repro.transport.flow import FlowRecord

#: Figure 9's request-size buckets: (label, lower bound exclusive, upper bound inclusive).
SIZE_BUCKETS: Tuple[Tuple[str, float, float], ...] = (
    ("<=10KB", 0.0, 10_000.0),
    ("10KB-1MB", 10_000.0, 1_000_000.0),
    (">1MB", 1_000_000.0, float("inf")),
)


def ideal_fct(
    size_bytes: float,
    rtt_s: float,
    bottleneck_bps: float,
    *,
    mss: int = 1500,
    initial_window_segments: int = 10,
) -> float:
    """Completion time of a transfer on an unloaded network.

    The model matches how the simulated transfers behave when nothing else is
    on the path: the first byte arrives half an RTT after the flow starts,
    slow start doubles the window every RTT from ``initial_window_segments``
    segments, and once the window covers the bandwidth-delay product (or the
    remaining data) the rest streams at the bottleneck rate.  Dividing a
    measured FCT by this value yields the paper's "slowdown" (1.0 = as fast
    as an unloaded network).
    """
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    if rtt_s <= 0 or bottleneck_bps <= 0:
        raise ValueError("rtt and bottleneck rate must be positive")
    bdp_bytes = bottleneck_bps * rtt_s / 8.0
    window = float(initial_window_segments * mss)
    sent = 0.0
    t = 0.5 * rtt_s
    while True:
        if window >= bdp_bytes or sent + window >= size_bytes:
            t += (size_bytes - sent) * 8.0 / bottleneck_bps
            return t
        sent += window
        t += rtt_s
        window *= 2.0


def slowdown(fct_s: float, size_bytes: float, rtt_s: float, bottleneck_bps: float) -> float:
    """Slowdown of one flow: measured FCT over unloaded FCT (1.0 is optimal)."""
    if fct_s <= 0:
        raise ValueError("fct must be positive")
    return fct_s / ideal_fct(size_bytes, rtt_s, bottleneck_bps)


@dataclass
class FctAnalysis:
    """Slowdown statistics for a set of completed flows."""

    rtt_s: float
    bottleneck_bps: float
    slowdowns: List[float]
    sizes: List[float]
    fcts: List[float]

    @classmethod
    def from_records(
        cls,
        records: Iterable[FlowRecord],
        *,
        rtt_s: float,
        bottleneck_bps: float,
        warmup_s: float = 0.0,
    ) -> "FctAnalysis":
        """Build an analysis from flow records, skipping incomplete and warm-up flows."""
        slowdowns: List[float] = []
        sizes: List[float] = []
        fcts: List[float] = []
        for record in records:
            if not record.completed or record.fct is None:
                continue
            if record.start_time < warmup_s:
                continue
            slowdowns.append(slowdown(record.fct, record.size_bytes, rtt_s, bottleneck_bps))
            sizes.append(float(record.size_bytes))
            fcts.append(record.fct)
        return cls(
            rtt_s=rtt_s,
            bottleneck_bps=bottleneck_bps,
            slowdowns=slowdowns,
            sizes=sizes,
            fcts=fcts,
        )

    def __len__(self) -> int:
        return len(self.slowdowns)

    def median_slowdown(self) -> float:
        return percentile(self.slowdowns, 50.0)

    def percentile_slowdown(self, pct: float) -> float:
        return percentile(self.slowdowns, pct)

    def median_fct(self) -> float:
        return percentile(self.fcts, 50.0)

    def percentile_fct(self, pct: float) -> float:
        return percentile(self.fcts, pct)

    def mean_slowdown(self) -> float:
        if not self.slowdowns:
            raise ValueError("no completed flows")
        return sum(self.slowdowns) / len(self.slowdowns)

    def by_size_bucket(self) -> Dict[str, "FctAnalysis"]:
        """Split the analysis into Figure 9's size buckets."""
        buckets: Dict[str, FctAnalysis] = {}
        for label, lo, hi in SIZE_BUCKETS:
            idx = [i for i, s in enumerate(self.sizes) if lo < s <= hi]
            buckets[label] = FctAnalysis(
                rtt_s=self.rtt_s,
                bottleneck_bps=self.bottleneck_bps,
                slowdowns=[self.slowdowns[i] for i in idx],
                sizes=[self.sizes[i] for i in idx],
                fcts=[self.fcts[i] for i in idx],
            )
        return buckets

    def short_flow_analysis(self, max_size_bytes: float = 10_000.0) -> "FctAnalysis":
        """Restrict the analysis to flows at or below ``max_size_bytes``."""
        idx = [i for i, s in enumerate(self.sizes) if s <= max_size_bytes]
        return FctAnalysis(
            rtt_s=self.rtt_s,
            bottleneck_bps=self.bottleneck_bps,
            slowdowns=[self.slowdowns[i] for i in idx],
            sizes=[self.sizes[i] for i in idx],
            fcts=[self.fcts[i] for i in idx],
        )


def filter_by_time(
    records: Sequence[FlowRecord], start: float, end: float
) -> List[FlowRecord]:
    """Flows that started within [start, end) — used for Figure 10's phases."""
    return [r for r in records if start <= r.start_time < end]
