"""Metrics and reporting.

* :mod:`repro.metrics.fct` — flow-completion-time and slowdown analysis
  (the primary metric of §7.2).
* :mod:`repro.metrics.stats` — distribution summaries and comparisons.
* :mod:`repro.metrics.reporting` — plain-text tables used by the benchmark
  harness to print paper-style rows.
"""

from repro.metrics.fct import FctAnalysis, ideal_fct, slowdown
from repro.metrics.stats import DistributionSummary, improvement, summarize
from repro.metrics.reporting import Table, format_comparison

__all__ = [
    "FctAnalysis",
    "ideal_fct",
    "slowdown",
    "DistributionSummary",
    "summarize",
    "improvement",
    "Table",
    "format_comparison",
]
