"""Distribution summaries and comparisons between configurations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.net.trace import percentile


@dataclass
class DistributionSummary:
    """Five-number-style summary of a sample distribution."""

    count: int
    mean: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p10": self.p10,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> DistributionSummary:
    """Summarize a non-empty sample set."""
    data: List[float] = list(samples)
    if not data:
        raise ValueError("cannot summarize an empty sample set")
    return DistributionSummary(
        count=len(data),
        mean=sum(data) / len(data),
        p10=percentile(data, 10.0),
        p25=percentile(data, 25.0),
        median=percentile(data, 50.0),
        p75=percentile(data, 75.0),
        p90=percentile(data, 90.0),
        p99=percentile(data, 99.0),
        minimum=min(data),
        maximum=max(data),
    )


def improvement(baseline: float, treatment: float) -> float:
    """Relative improvement of ``treatment`` over ``baseline``.

    Positive values mean the treatment is lower/better (e.g. ``0.28`` means a
    28% reduction, as in "Bundler achieves 28% lower median slowdown").
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - treatment) / baseline


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of positive samples."""
    if not samples:
        raise ValueError("geometric mean of empty sequence")
    if any(s <= 0 for s in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))


def jains_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index of a set of throughput shares (1.0 = perfectly fair)."""
    if not shares:
        raise ValueError("fairness of empty sequence")
    total = sum(shares)
    squares = sum(s * s for s in shares)
    if squares == 0:
        return 1.0
    return (total * total) / (len(shares) * squares)
