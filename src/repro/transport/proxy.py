"""Idealized TCP-terminating proxy emulation (§7.5).

The paper deliberately does not terminate connections at the Bundler
(§4.4), but §7.5 asks how much additional benefit a proxy-based design
could provide.  The authors emulate an *idealized* proxy by configuring the
endhosts with a constant congestion window slightly larger than the
bandwidth-delay product (450 packets in their setup) and enlarging the
sendbox buffer so it can absorb the resulting queue.  That way medium and
long flows skip window growth entirely — the upper bound on what a real
split-TCP proxy could achieve.

This module packages that emulation: :func:`idealized_proxy_window` returns
the constant-window controller for the endhosts, and
:func:`proxy_buffer_packets` sizes the sendbox queue.
"""

from __future__ import annotations

import math

from repro.cc.constant import ConstantWindowCC
from repro.util.units import bdp_packets

#: Window used in the paper's emulation, in packets.
PAPER_PROXY_WINDOW_PACKETS = 450


def idealized_proxy_window(
    bottleneck_bps: float,
    rtt_s: float,
    *,
    mss: int = 1500,
    headroom: float = 1.2,
) -> ConstantWindowCC:
    """Constant-window endhost controller for the idealized-proxy emulation.

    The window is the path bandwidth-delay product times ``headroom``
    (slightly larger than the BDP, as in the paper), expressed in packets.
    """
    window_packets = max(int(math.ceil(bdp_packets(bottleneck_bps, rtt_s, mss) * headroom)), 4)
    return ConstantWindowCC(mss=mss, window_segments=window_packets)


def proxy_buffer_packets(
    bottleneck_bps: float,
    rtt_s: float,
    num_flows: int,
    *,
    mss: int = 1500,
    headroom: float = 1.2,
) -> int:
    """Sendbox buffer (packets) needed to absorb the constant-window endhosts.

    Each flow can have up to one constant window outstanding, and all of the
    excess beyond the path BDP queues at the sendbox.
    """
    per_flow = int(math.ceil(bdp_packets(bottleneck_bps, rtt_s, mss) * headroom))
    return max(per_flow * max(num_flows, 1) * 2, 1000)
