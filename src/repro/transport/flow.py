"""Flow-level convenience wrapper around the TCP sender/receiver pair.

Experiments deal in *flows* ("a 37 KB response from server 3 to the
client"), not in raw senders and receivers.  :class:`TcpFlow` allocates the
flow id and port, wires a :class:`~repro.transport.tcp.TcpSender` on the
source host to a :class:`~repro.transport.tcp.TcpReceiver` on the
destination host, and produces a :class:`FlowRecord` suitable for
flow-completion-time analysis when the receiver has all the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cc.base import WindowCongestionControl
from repro.net.node import Host
from repro.net.packet import PacketFactory
from repro.net.simulator import Simulator
from repro.transport.tcp import TcpReceiver, TcpSender

def next_flow_id(sim: Simulator) -> int:
    """Allocate a flow identifier scoped to ``sim``.

    Flow ids feed the SFQ flow hash, so allocation is strictly
    per-simulation: a process-global counter would make nominally identical
    runs diverge based on how many simulations ran before them.
    """
    return sim.next_flow_id()


def next_port(sim: Simulator) -> int:
    """Allocate a port number (used on both endpoints), scoped like
    :func:`next_flow_id`."""
    return sim.next_port()


@dataclass
class FlowRecord:
    """Outcome of one flow, as used by the FCT/slowdown analysis."""

    flow_id: int
    size_bytes: int
    start_time: float
    completion_time: Optional[float]
    traffic_class: int = 0
    retransmissions: int = 0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in seconds (``None`` if the flow never finished)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


class TcpFlow:
    """A single TCP transfer from ``src_host`` to ``dst_host``."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        src_host: Host,
        dst_host: Host,
        *,
        size_bytes: Optional[int],
        cc: Optional[WindowCongestionControl] = None,
        mss: int = 1500,
        traffic_class: int = 0,
        on_complete: Optional[Callable[["TcpFlow"], None]] = None,
    ) -> None:
        self.sim = sim
        self.size_bytes = size_bytes
        self.traffic_class = traffic_class
        self.flow_id = next_flow_id(sim)
        self.port = next_port(sim)
        self.on_complete = on_complete
        self.start_time: Optional[float] = None

        self.receiver = TcpReceiver(
            sim,
            dst_host,
            factory,
            flow_id=self.flow_id,
            port=self.port,
            expected_bytes=size_bytes,
            on_complete=self._receiver_done,
        )
        self.sender = TcpSender(
            sim,
            src_host,
            factory,
            flow_id=self.flow_id,
            port=self.port,
            dst_address=dst_host.address,
            dst_port=self.port,
            size_bytes=size_bytes,
            cc=cc,
            mss=mss,
            traffic_class=traffic_class,
        )

    def start(self, delay: float = 0.0) -> "TcpFlow":
        """Start the transfer ``delay`` seconds from now."""
        def begin() -> None:
            self.start_time = self.sim.now
            self.sender.start()

        if delay <= 0:
            begin()
        else:
            self.sim.schedule(delay, begin)
        return self

    def stop(self) -> None:
        """Stop a backlogged flow."""
        self.sender.stop()

    def _receiver_done(self, now: float) -> None:
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def completed(self) -> bool:
        return self.receiver.completed

    @property
    def completion_time(self) -> Optional[float]:
        return self.receiver.complete_time

    @property
    def fct(self) -> Optional[float]:
        if self.start_time is None or self.receiver.complete_time is None:
            return None
        return self.receiver.complete_time - self.start_time

    @property
    def throughput_bps(self) -> Optional[float]:
        """Average goodput of the flow (completed flows only)."""
        fct = self.fct
        if fct is None or fct <= 0 or self.size_bytes is None:
            return None
        return self.size_bytes * 8.0 / fct

    def record(self) -> FlowRecord:
        """Snapshot this flow as a :class:`FlowRecord`."""
        return FlowRecord(
            flow_id=self.flow_id,
            size_bytes=self.size_bytes if self.size_bytes is not None else self.sender.snd_una,
            start_time=self.start_time if self.start_time is not None else 0.0,
            completion_time=self.receiver.complete_time,
            traffic_class=self.traffic_class,
            retransmissions=self.sender.retransmissions,
        )
