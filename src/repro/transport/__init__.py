"""Endhost transports.

Bundler explicitly does *not* terminate or modify end-to-end connections
(§4.4), so the evaluation needs realistic endhost behaviour to react to the
queues Bundler moves around.  This subpackage provides:

* :mod:`repro.transport.tcp` — a TCP-like reliable transport: slow start and
  congestion avoidance via a pluggable window controller
  (:mod:`repro.cc`), cumulative ACKs, duplicate-ACK fast retransmit, and
  retransmission timeouts.
* :mod:`repro.transport.flow` — the :class:`~repro.transport.flow.TcpFlow`
  convenience wrapper that wires a sender and receiver onto two hosts and
  records flow-completion times.
* :mod:`repro.transport.udp` — application-limited (paced) UDP streams and
  the closed-loop 40-byte request/response probes used in the real-Internet
  experiment (§8).
* :mod:`repro.transport.proxy` — helpers for the idealized TCP-terminating
  proxy emulation of §7.5.
"""

from repro.transport.flow import TcpFlow, FlowRecord, next_flow_id, next_port
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.udp import ClosedLoopPinger, PacedUdpStream, UdpEchoServer

__all__ = [
    "TcpFlow",
    "FlowRecord",
    "TcpSender",
    "TcpReceiver",
    "PacedUdpStream",
    "ClosedLoopPinger",
    "UdpEchoServer",
    "next_flow_id",
    "next_port",
]
