"""UDP-style transports: paced streams and closed-loop request/response probes.

Two behaviours from the paper are modelled here:

* *Application-limited (paced) traffic* such as video streams: a
  :class:`PacedUdpStream` emits packets at a fixed rate regardless of
  network feedback.  §7.3 uses such traffic as the "non-buffer-filling"
  cross traffic that Bundler should tolerate without giving up control.
* *Closed-loop latency probes* (§8): a :class:`ClosedLoopPinger` sends a
  40-byte request and issues the next request only when the matching
  40-byte response returns, recording the request/response RTT.  The echo
  side is :class:`UdpEchoServer`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.node import Host
from repro.net.packet import Packet, PacketFactory
from repro.net.simulator import Simulator
from repro.transport.flow import next_flow_id, next_port

PROBE_SIZE = 40


class PacedUdpStream:
    """Sends fixed-size packets at a constant bit rate (application-limited)."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        src_host: Host,
        dst_host: Host,
        *,
        rate_bps: float,
        packet_size: int = 1200,
        traffic_class: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.sim = sim
        self.factory = factory
        self.src_host = src_host
        self.dst_host = dst_host
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.traffic_class = traffic_class
        self.flow_id = next_flow_id(sim)
        self.port = next_port(sim)
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False
        sim.observe_flow(self)

    @property
    def interval(self) -> float:
        """Seconds between packet transmissions at the configured rate."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, duration: Optional[float] = None) -> "PacedUdpStream":
        """Start pacing packets; stop after ``duration`` seconds if given."""
        self._running = True
        stop_at = None if duration is None else self.sim.now + duration
        self._emit(stop_at)
        return self

    def _emit(self, stop_at: Optional[float]) -> None:
        if not self._running:
            return
        if stop_at is not None and self.sim.now >= stop_at:
            self._running = False
            return
        packet = self.factory.make(
            flow_id=self.flow_id,
            src=self.src_host.address,
            dst=self.dst_host.address,
            src_port=self.port,
            dst_port=self.port,
            seq=self.packets_sent,
            size=self.packet_size,
            traffic_class=self.traffic_class,
            created_at=self.sim.now,
        )
        self.src_host.send(packet)
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.sim.schedule_call(self.interval, self._emit, stop_at)

    def stop(self) -> None:
        self._running = False


class UdpEchoServer:
    """Replies to every request with an equally-sized response."""

    def __init__(self, sim: Simulator, host: Host, factory: PacketFactory, port: int) -> None:
        self.sim = sim
        self.host = host
        self.factory = factory
        self.port = port
        self.requests_served = 0
        host.register_agent(port, self)

    def on_packet(self, packet: Packet, now: float) -> None:
        self.requests_served += 1
        reply = self.factory.make(
            flow_id=packet.flow_id,
            src=self.host.address,
            dst=packet.src,
            src_port=self.port,
            dst_port=packet.src_port,
            seq=packet.seq,
            size=packet.size,
            created_at=now,
            payload={"echo_of": packet.pkt_id},
        )
        self.host.send(reply)


class ClosedLoopPinger:
    """Closed-loop request/response probe measuring application-level RTTs."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        src_host: Host,
        dst_host: Host,
        *,
        echo_port: Optional[int] = None,
        probe_size: int = PROBE_SIZE,
        traffic_class: int = 0,
        timeout_s: float = 1.0,
    ) -> None:
        self.sim = sim
        self.factory = factory
        self.src_host = src_host
        self.dst_host = dst_host
        self.probe_size = probe_size
        self.traffic_class = traffic_class
        self.timeout_s = timeout_s
        self.flow_id = next_flow_id(sim)
        self.port = next_port(sim)
        self.echo_port = echo_port if echo_port is not None else self.port
        self.rtts: List[float] = []
        self.losses = 0
        self._seq = 0
        self._outstanding_seq: Optional[int] = None
        self._outstanding_sent_at: Optional[float] = None
        self._running = False
        # The echo server is created lazily on the destination host if the
        # caller did not set one up already on ``echo_port``.
        if echo_port is None:
            self.echo_server = UdpEchoServer(sim, dst_host, factory, self.echo_port)
        else:
            self.echo_server = None
        src_host.register_agent(self.port, self)

    def start(self) -> "ClosedLoopPinger":
        self._running = True
        self._send_request()
        return self

    def stop(self) -> None:
        self._running = False

    def _send_request(self) -> None:
        if not self._running:
            return
        self._outstanding_sent_at = self.sim.now
        self._outstanding_seq = self._seq
        request = self.factory.make(
            flow_id=self.flow_id,
            src=self.src_host.address,
            dst=self.dst_host.address,
            src_port=self.port,
            dst_port=self.echo_port,
            seq=self._seq,
            size=self.probe_size,
            traffic_class=self.traffic_class,
            created_at=self.sim.now,
        )
        self._seq += 1
        self.src_host.send(request)
        self.sim.schedule_call(self.timeout_s, self._on_timeout, request.seq)

    def _on_timeout(self, seq: int) -> None:
        # If the outstanding request (or its response) was dropped, give up on
        # it and issue a fresh one; a closed-loop client would otherwise hang
        # forever the first time a 40-byte probe hits a full queue.
        if not self._running or self._outstanding_seq != seq:
            return
        self.losses += 1
        self._outstanding_seq = None
        self._outstanding_sent_at = None
        self._send_request()

    def on_packet(self, packet: Packet, now: float) -> None:
        if self._outstanding_sent_at is None or packet.seq != self._outstanding_seq:
            return
        self.rtts.append(now - self._outstanding_sent_at)
        self._outstanding_sent_at = None
        self._outstanding_seq = None
        if self._running:
            self._send_request()
