"""TCP-like reliable transport.

This is a deliberately compact but behaviourally faithful TCP model:

* the sender keeps ``pipe <= cwnd`` where the congestion window comes from a
  pluggable :class:`~repro.cc.base.WindowCongestionControl` (Cubic by
  default, matching §7.1) and ``pipe`` is the SACK-adjusted amount of data
  in flight;
* the receiver acknowledges every data segment cumulatively and reports
  selective-acknowledgement (SACK) blocks for out-of-order data;
* a segment is marked lost once three segments' worth of data above it has
  been selectively acknowledged (SACK-based fast retransmit), triggering a
  single window reduction per round trip;
* a retransmission timeout (RFC 6298-style SRTT/RTTVAR estimator with
  exponential backoff) acts as the last-resort recovery mechanism;
* retransmitted segments are excluded from RTT sampling (Karn's rule).

Segments are modelled as whole packets of up to ``mss`` payload bytes;
header overhead is not modelled separately (the evaluation's quantities are
all relative, so a constant per-packet overhead would cancel out).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cc.base import WindowCongestionControl
from repro.cc.cubic import CubicCC
from repro.net.node import Host
from repro.net.packet import Packet, PacketFactory
from repro.net.simulator import CancelToken, Simulator

#: ACK packet size in bytes (pure ACK, no payload).
ACK_SIZE = 40

#: Minimum and initial retransmission timeouts, seconds.
MIN_RTO = 0.2
INITIAL_RTO = 1.0
MAX_RTO = 60.0

#: A segment is declared lost once this many bytes above it have been SACKed.
REORDER_BYTES = 3 * 1500

#: Maximum number of SACK blocks carried in one ACK.  Real TCP is limited to
#: 3-4 blocks per ACK and relies on the scoreboard accumulating across many
#: ACKs; carrying the (merged) block list directly keeps the simulated sender's
#: scoreboard exact without modelling that accumulation packet-by-packet.
MAX_SACK_BLOCKS = 256


@dataclass
class _SegmentState:
    """Sender-side bookkeeping for one transmitted, not-yet-acked segment."""

    seq: int
    size: int
    sent_time: float
    retransmitted: bool = False
    sacked: bool = False
    lost: bool = False


class TcpSender:
    """Sending side of a TCP-like connection with SACK loss recovery."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        factory: PacketFactory,
        *,
        flow_id: int,
        port: int,
        dst_address: int,
        dst_port: int,
        size_bytes: Optional[int],
        cc: Optional[WindowCongestionControl] = None,
        mss: int = 1500,
        traffic_class: int = 0,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.factory = factory
        self.flow_id = flow_id
        self.port = port
        self.dst_address = dst_address
        self.dst_port = dst_port
        self.size_bytes = size_bytes
        self.cc = cc if cc is not None else CubicCC(mss=mss)
        self.mss = mss
        self.traffic_class = traffic_class
        self.on_complete = on_complete

        self.snd_nxt = 0
        self.snd_una = 0
        self.completed = False
        self.started = False
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.retransmissions = 0
        self.timeouts = 0
        self.packets_sent = 0

        # The scoreboard.  Segments are inserted at ever-increasing ``snd_nxt``
        # and only ever deleted from the front (cumulative ACKs), so the dict's
        # insertion order *is* ascending sequence order — iteration replaces
        # every ``sorted()`` the hot path used to need.  Derived quantities the
        # ACK path would otherwise recompute by scanning the scoreboard are
        # maintained incrementally at each state transition:
        #   _pipe       sum of sizes of segments neither SACKed nor lost
        #   _hs         highest SACKed byte (``None`` when nothing is SACKed)
        #   _retx_seqs  seqs of segments currently carrying ``retransmitted=True``
        #   _lost_heap  min-heap of possibly-lost seqs, validated lazily
        #   _sack_floor below this seq every segment is SACKed, lost or
        #               retransmitted — states the SACK loss rule skips — and
        #               provably stays that way, so loss detection never
        #               rescans below it
        #   _sacked_ranges sorted disjoint [lo, hi) byte ranges exactly
        #               covering the SACKed segments, so applying an ACK's
        #               blocks only walks the *newly* covered bytes
        self._segments: Dict[int, _SegmentState] = {}
        self._pipe = 0
        self._hs: Optional[int] = None
        self._retx_seqs: set = set()
        self._sack_floor = 0
        self._sacked_ranges: List[List[int]] = []
        self._lost_heap: List[int] = []
        self._has_lost = False
        self._has_sacked = False
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = INITIAL_RTO
        self._rto_timer: Optional[CancelToken] = None
        self._recovery_until = -1  # end (snd_nxt) of the current loss-recovery window

        host.register_agent(port, self)
        sim.observe_flow(self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting."""
        if self.started:
            return
        self.started = True
        self.start_time = self.sim.now
        self._try_send()

    def stop(self) -> None:
        """Stop a backlogged (unbounded) flow and release its port."""
        self.size_bytes = self.snd_nxt
        self._finish_if_done()
        self._cancel_rto()
        self.host.deregister_agent(self.port)

    @property
    def cwnd_bytes(self) -> int:
        """The congestion controller's current window (read-only).

        Exposed on the sender so observers (the probe layer samples this
        per tick) never reach into ``cc`` internals.
        """
        return self.cc.cwnd_bytes

    @property
    def bytes_acked(self) -> int:
        return self.snd_una

    @property
    def inflight_bytes(self) -> int:
        """Bytes sent and not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def pipe_bytes(self) -> int:
        """SACK-adjusted estimate of bytes currently in the network."""
        return self._pipe

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate of this connection."""
        return self._srtt

    def _remaining_bytes(self) -> Optional[int]:
        if self.size_bytes is None:
            return None
        return max(self.size_bytes - self.snd_nxt, 0)

    # -- sending ----------------------------------------------------------------

    def _next_new_segment_size(self) -> int:
        remaining = self._remaining_bytes()
        if remaining is None:
            return self.mss
        return min(self.mss, remaining)

    def _try_send(self) -> None:
        if self.completed:
            return
        # Track the SACK-adjusted pipe locally while sending; the instance
        # counter is updated by _transmit_new/_retransmit_segment as we go.
        pipe = self._pipe
        budget_guard = 0
        while budget_guard < 100_000:
            budget_guard += 1
            # First priority: retransmit segments marked lost.
            lost = self._next_lost_segment()
            if lost is not None:
                if pipe + lost.size > self.cc.cwnd_bytes and pipe > 0:
                    break
                self._retransmit_segment(lost)
                pipe += lost.size
                continue
            # Then send new data.
            seg = self._next_new_segment_size()
            if seg <= 0:
                break
            if pipe + seg > self.cc.cwnd_bytes:
                break
            self._transmit_new(self.snd_nxt, seg)
            self.snd_nxt += seg
            pipe += seg
        self._arm_rto()

    def _next_lost_segment(self) -> Optional[_SegmentState]:
        if not self._has_lost:
            return None
        # Heap entries are only hints: a seq may since have been cumulatively
        # acked (gone), retransmitted (lost cleared) or SACKed.  Stale tops are
        # discarded here; every segment whose ``lost`` flag is (re)set has its
        # seq (re)pushed, so the heap top is the lowest genuinely lost seq.
        heap = self._lost_heap
        segments = self._segments
        while heap:
            state = segments.get(heap[0])
            if state is not None and state.lost and not state.sacked:
                return state
            heapq.heappop(heap)
        self._has_lost = False
        return None

    def _make_packet(self, seq: int, size: int) -> Packet:
        return self.factory.make(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=self.dst_address,
            src_port=self.port,
            dst_port=self.dst_port,
            seq=seq,
            size=size,
            traffic_class=self.traffic_class,
            created_at=self.sim.now,
            payload={"len": size},
        )

    def _transmit_new(self, seq: int, size: int) -> None:
        now = self.sim.now
        self._segments[seq] = _SegmentState(seq=seq, size=size, sent_time=now)
        self._pipe += size
        self.packets_sent += 1
        self.host.send(self._make_packet(seq, size))

    def _retransmit_segment(self, state: _SegmentState) -> None:
        state.lost = False  # back in flight; may be marked lost again later
        self._pipe += state.size
        if not state.retransmitted:
            state.retransmitted = True
            self._retx_seqs.add(state.seq)
        state.sent_time = self.sim.now
        self.retransmissions += 1
        self.packets_sent += 1
        self.host.send(self._make_packet(state.seq, state.size))

    # -- receiving ACKs ------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> None:
        if not packet.is_ack or packet.flow_id != self.flow_id:
            return
        payload = packet.payload or {}
        ack = int(payload.get("ack", 0))
        sack_blocks: List[Tuple[int, int]] = list(payload.get("sack", ()))

        newly_acked = 0
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self._sample_rtt(ack, now)
            # Cumulatively acked segments are exactly a prefix of the
            # scoreboard (insertion order is seq order), so stop at the first
            # survivor instead of scanning the whole dict.
            segments = self._segments
            dead: List[int] = []
            for seq, state in segments.items():
                if seq >= ack:
                    break
                dead.append(seq)
                if not state.sacked and not state.lost:
                    self._pipe -= state.size
                if state.retransmitted:
                    self._retx_seqs.discard(seq)
            for seq in dead:
                del segments[seq]
            if self._hs is not None and ack >= self._hs:
                # ACK boundaries are segment boundaries, so an ack at or above
                # the highest SACKed byte has deleted every SACKed segment.
                self._hs = None
            ranges = self._sacked_ranges
            if ranges:
                while ranges and ranges[0][1] <= ack:
                    ranges.pop(0)
                if ranges and ranges[0][0] < ack:
                    ranges[0][0] = ack
            self.snd_una = ack
            self._arm_rto(reset=True)

        self._apply_sack(sack_blocks)
        lost_found = self._detect_losses()
        if lost_found and self.snd_una >= self._recovery_until:
            # At most one congestion-window reduction per window of data.
            self.cc.on_loss(now)
            self._recovery_until = self.snd_nxt

        if newly_acked > 0:
            self.cc.on_ack(now, newly_acked, self._srtt or 0.0)
            self._finish_if_done()
        if not self.completed:
            self._try_send()

    def _apply_sack(self, blocks: List[Tuple[int, int]]) -> None:
        if not blocks or not self._segments:
            return
        self._has_sacked = True
        # SACK blocks mostly repeat coverage the sender already knows about.
        # ``_sacked_ranges`` records exactly the SACKed intervals, so each
        # block is first subtracted from it and only the *new* bytes are
        # walked (by scoreboard key — ACK/block boundaries are segment
        # boundaries and the scoreboard partitions [snd_una, snd_nxt)).
        # Every byte is walked at most once per connection epoch.
        blocks = sorted(blocks)
        segments = self._segments
        snd_una = self.snd_una
        hs = self._hs
        ranges = self._sacked_ranges
        nr = len(ranges)
        ri = 0
        clamped: List[List[int]] = []
        for start, end in blocks:
            if end <= snd_una:
                continue
            if start < snd_una:
                start = snd_una
            if start >= end:
                continue
            clamped.append([start, end])
            while ri < nr and ranges[ri][1] <= start:
                ri += 1
            pos = start
            j = ri
            while pos < end:
                if j < nr:
                    lo, hi = ranges[j]
                    if lo <= pos:
                        if hi > pos:
                            pos = hi
                        j += 1
                        continue
                    gap_end = lo if lo < end else end
                else:
                    gap_end = end
                seq = pos
                while seq < gap_end:
                    state = segments[seq]
                    state.sacked = True
                    if not state.lost:
                        self._pipe -= state.size
                    seq += state.size
                if hs is None or gap_end > hs:
                    hs = gap_end
                pos = gap_end
        self._hs = hs
        if clamped:
            # Fold the clamped blocks into the coverage map: one sweep over
            # two sorted disjoint lists, coalescing touching intervals.
            out: List[List[int]] = []
            i = j = 0
            nc = len(clamped)
            while i < nr or j < nc:
                if j >= nc or (i < nr and ranges[i][0] <= clamped[j][0]):
                    nxt = ranges[i]
                    i += 1
                else:
                    nxt = clamped[j]
                    j += 1
                if out and nxt[0] <= out[-1][1]:
                    if nxt[1] > out[-1][1]:
                        out[-1][1] = nxt[1]
                else:
                    out.append([nxt[0], nxt[1]])
            self._sacked_ranges = out

    def _detect_losses(self) -> bool:
        """SACK- and time-based loss detection.

        A never-retransmitted segment is lost once three segments' worth of
        data above it has been SACKed (classic SACK fast retransmit).  A
        retransmitted segment is only re-declared lost on a time basis (its
        retransmission has had ample time to be acknowledged), which recovers
        lost retransmissions without waiting for the RTO and without the
        retransmission storms that re-applying the SACK rule would cause.
        """
        if not self._segments:
            return False
        if not self._has_sacked and not self._has_lost and self.retransmissions == 0:
            # Fast path: nothing has ever been SACKed or retransmitted, so no
            # loss evidence can exist yet.
            return False
        segments = self._segments
        found = False
        # Time rule: only outstanding retransmitted segments are eligible,
        # and those are tracked in a (small) side set.  Marks are mutually
        # independent, so set iteration order cannot affect the outcome.
        if self._retx_seqs:
            now = self.sim.now
            reorder_window = 1.5 * (self._srtt if self._srtt is not None else INITIAL_RTO)
            for rseq in self._retx_seqs:
                state = segments[rseq]
                if state.sacked or state.lost:
                    continue
                if now - state.sent_time > reorder_window:
                    state.lost = True
                    self._pipe -= state.size
                    heapq.heappush(self._lost_heap, rseq)
                    found = True
        # SACK rule: eligible segments sit below the reorder bound, and the
        # scoreboard is a contiguous byte partition, so walk it by key from
        # the exemption floor.  Everything the walk covers ends up SACKed,
        # lost or retransmitted, so the floor advances to the walk's end and
        # no ACK ever rescans the same region.
        highest_sacked = self._hs
        if highest_sacked is not None:
            bound = highest_sacked - REORDER_BYTES
            seq = self._sack_floor
            if seq < self.snd_una:
                seq = self.snd_una
            while seq <= bound:
                state = segments.get(seq)
                if state is None:
                    break
                if not (state.sacked or state.lost or state.retransmitted):
                    state.lost = True
                    self._pipe -= state.size
                    heapq.heappush(self._lost_heap, seq)
                    found = True
                seq += state.size
            self._sack_floor = seq
        if found:
            self._has_lost = True
        return found

    def _sample_rtt(self, ack: int, now: float) -> None:
        # Use the send time of the highest segment covered by this ACK that
        # was not retransmitted (Karn's algorithm).  Candidates are confined
        # to the acked prefix of the (seq-ordered) scoreboard, so the scan
        # stops at the first surviving segment.
        newest: Optional[_SegmentState] = None
        for state in self._segments.values():
            if state.seq >= ack:
                break
            if not state.retransmitted:
                newest = state
        if newest is None:
            return
        rtt = now - newest.sent_time
        if rtt <= 0:
            return
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(max(self._srtt + 4.0 * self._rttvar, MIN_RTO), MAX_RTO)

    # -- timers --------------------------------------------------------------------

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _arm_rto(self, reset: bool = False) -> None:
        if self.completed or self.inflight_bytes <= 0:
            self._cancel_rto()
            return
        if reset or self._rto_timer is None:
            self._cancel_rto()
            self._rto_timer = self.sim.schedule(self._rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.completed or self.inflight_bytes <= 0:
            return
        now = self.sim.now
        self.timeouts += 1
        self.cc.on_timeout(now, flight_bytes=self.inflight_bytes)
        self._rto = min(self._rto * 2.0, MAX_RTO)
        # Everything in flight is suspect after a timeout: clear SACK state and
        # mark all outstanding segments lost so they are retransmitted under
        # the (now tiny) congestion window.
        for state in self._segments.values():
            state.sacked = False
            state.lost = True
            state.retransmitted = False
        # Everything is now lost: nothing is in the pipe, nothing is SACKed,
        # nothing is retransmitted — which also makes the whole scoreboard
        # exempt from the SACK loss rule.  An ascending list is already a
        # valid min-heap, so the scoreboard's key order seeds the lost heap.
        self._pipe = 0
        self._hs = None
        self._retx_seqs.clear()
        self._sack_floor = self.snd_nxt
        self._sacked_ranges = []
        self._lost_heap = list(self._segments)
        self._has_lost = bool(self._segments)
        self._has_sacked = False
        self._recovery_until = self.snd_nxt
        # _try_send re-arms the (backed-off) RTO once it has queued the
        # retransmissions; scheduling it again here would leak a second timer.
        self._try_send()

    # -- completion -------------------------------------------------------------------

    def _finish_if_done(self) -> None:
        if self.completed or self.size_bytes is None:
            return
        if self.snd_una >= self.size_bytes:
            self.completed = True
            self.complete_time = self.sim.now
            self._cancel_rto()
            if self.on_complete is not None:
                self.on_complete(self.sim.now)


class TcpReceiver:
    """Receiving side: cumulative ACKs with SACK blocks for out-of-order data."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        factory: PacketFactory,
        *,
        flow_id: int,
        port: int,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.factory = factory
        self.flow_id = flow_id
        self.port = port
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete

        self.rcv_nxt = 0
        self.bytes_received = 0
        self.packets_received = 0
        self.complete_time: Optional[float] = None
        self.completed = False
        # Out-of-order data as a sorted list of disjoint [start, end) ranges.
        self._ranges: List[List[int]] = []
        # Rendered SACK blocks, rebuilt when the ranges change.  The cached
        # list is shared across ACK payloads and never mutated in place.
        self._blocks_cache: Optional[List[Tuple[int, int]]] = None

        host.register_agent(port, self)

    # -- out-of-order range bookkeeping ------------------------------------------

    def _insert_range(self, start: int, end: int) -> None:
        # Fast paths for the dominant arrival pattern: data beyond a hole
        # lands in order, either extending the newest range or opening a new
        # one past it.  Stored ranges are disjoint, non-adjacent and sorted,
        # so comparing against the last range alone is sufficient.
        self._blocks_cache = None
        if self._ranges:
            last = self._ranges[-1]
            if start > last[1]:
                self._ranges.append([start, end])
                return
            if start == last[1]:
                if end > last[1]:
                    last[1] = end
                return
        else:
            self._ranges.append([start, end])
            return
        merged: List[List[int]] = []
        placed = False
        for lo, hi in self._ranges:
            if end < lo and not placed:
                merged.append([start, end])
                placed = True
            if hi < start or end < lo:
                merged.append([lo, hi])
            else:
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append([start, end])
        merged.sort()
        # Merge adjacent/overlapping ranges produced by the insertion.
        result: List[List[int]] = []
        for lo, hi in merged:
            if result and lo <= result[-1][1]:
                result[-1][1] = max(result[-1][1], hi)
            else:
                result.append([lo, hi])
        self._ranges = result

    def _advance_cumulative(self) -> None:
        while self._ranges and self._ranges[0][0] <= self.rcv_nxt:
            lo, hi = self._ranges.pop(0)
            self._blocks_cache = None
            self.rcv_nxt = max(self.rcv_nxt, hi)

    def sack_blocks(self) -> List[Tuple[int, int]]:
        """Current out-of-order ranges, newest-capped to the SACK block limit."""
        blocks = self._blocks_cache
        if blocks is None:
            blocks = self._blocks_cache = [
                (lo, hi) for lo, hi in self._ranges[:MAX_SACK_BLOCKS]
            ]
        return blocks

    # -- datapath -------------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> None:
        if packet.is_ack or packet.flow_id != self.flow_id:
            return
        self.packets_received += 1
        self.bytes_received += packet.size
        seq, size = packet.seq, packet.size
        if seq == self.rcv_nxt:
            self.rcv_nxt += size
            self._advance_cumulative()
        elif seq > self.rcv_nxt:
            self._insert_range(seq, seq + size)
        else:
            # Duplicate of already-delivered data; ACK it again.
            pass
        self._send_ack(packet)
        self._finish_if_done()

    def _send_ack(self, data_packet: Packet) -> None:
        ack = self.factory.make(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=data_packet.src,
            src_port=self.port,
            dst_port=data_packet.src_port,
            seq=self.rcv_nxt,
            size=ACK_SIZE,
            is_ack=True,
            created_at=self.sim.now,
            payload={"ack": self.rcv_nxt, "sack": self.sack_blocks()},
        )
        self.host.send(ack)

    def _finish_if_done(self) -> None:
        if self.completed or self.expected_bytes is None:
            return
        if self.rcv_nxt >= self.expected_bytes:
            self.completed = True
            self.complete_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.sim.now)
