"""TCP-like reliable transport.

This is a deliberately compact but behaviourally faithful TCP model:

* the sender keeps ``pipe <= cwnd`` where the congestion window comes from a
  pluggable :class:`~repro.cc.base.WindowCongestionControl` (Cubic by
  default, matching §7.1) and ``pipe`` is the SACK-adjusted amount of data
  in flight;
* the receiver acknowledges every data segment cumulatively and reports
  selective-acknowledgement (SACK) blocks for out-of-order data;
* a segment is marked lost once three segments' worth of data above it has
  been selectively acknowledged (SACK-based fast retransmit), triggering a
  single window reduction per round trip;
* a retransmission timeout (RFC 6298-style SRTT/RTTVAR estimator with
  exponential backoff) acts as the last-resort recovery mechanism;
* retransmitted segments are excluded from RTT sampling (Karn's rule).

Segments are modelled as whole packets of up to ``mss`` payload bytes;
header overhead is not modelled separately (the evaluation's quantities are
all relative, so a constant per-packet overhead would cancel out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cc.base import WindowCongestionControl
from repro.cc.cubic import CubicCC
from repro.net.node import Host
from repro.net.packet import Packet, PacketFactory
from repro.net.simulator import CancelToken, Simulator

#: ACK packet size in bytes (pure ACK, no payload).
ACK_SIZE = 40

#: Minimum and initial retransmission timeouts, seconds.
MIN_RTO = 0.2
INITIAL_RTO = 1.0
MAX_RTO = 60.0

#: A segment is declared lost once this many bytes above it have been SACKed.
REORDER_BYTES = 3 * 1500

#: Maximum number of SACK blocks carried in one ACK.  Real TCP is limited to
#: 3-4 blocks per ACK and relies on the scoreboard accumulating across many
#: ACKs; carrying the (merged) block list directly keeps the simulated sender's
#: scoreboard exact without modelling that accumulation packet-by-packet.
MAX_SACK_BLOCKS = 256


@dataclass
class _SegmentState:
    """Sender-side bookkeeping for one transmitted, not-yet-acked segment."""

    seq: int
    size: int
    sent_time: float
    retransmitted: bool = False
    sacked: bool = False
    lost: bool = False


class TcpSender:
    """Sending side of a TCP-like connection with SACK loss recovery."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        factory: PacketFactory,
        *,
        flow_id: int,
        port: int,
        dst_address: int,
        dst_port: int,
        size_bytes: Optional[int],
        cc: Optional[WindowCongestionControl] = None,
        mss: int = 1500,
        traffic_class: int = 0,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.factory = factory
        self.flow_id = flow_id
        self.port = port
        self.dst_address = dst_address
        self.dst_port = dst_port
        self.size_bytes = size_bytes
        self.cc = cc if cc is not None else CubicCC(mss=mss)
        self.mss = mss
        self.traffic_class = traffic_class
        self.on_complete = on_complete

        self.snd_nxt = 0
        self.snd_una = 0
        self.completed = False
        self.started = False
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.retransmissions = 0
        self.timeouts = 0
        self.packets_sent = 0

        self._segments: Dict[int, _SegmentState] = {}
        self._has_lost = False
        self._has_sacked = False
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = INITIAL_RTO
        self._rto_timer: Optional[CancelToken] = None
        self._recovery_until = -1  # end (snd_nxt) of the current loss-recovery window

        host.register_agent(port, self)
        sim.observe_flow(self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting."""
        if self.started:
            return
        self.started = True
        self.start_time = self.sim.now
        self._try_send()

    def stop(self) -> None:
        """Stop a backlogged (unbounded) flow and release its port."""
        self.size_bytes = self.snd_nxt
        self._finish_if_done()
        self._cancel_rto()
        self.host.deregister_agent(self.port)

    @property
    def bytes_acked(self) -> int:
        return self.snd_una

    @property
    def inflight_bytes(self) -> int:
        """Bytes sent and not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def pipe_bytes(self) -> int:
        """SACK-adjusted estimate of bytes currently in the network."""
        return sum(s.size for s in self._segments.values() if not s.sacked and not s.lost)

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate of this connection."""
        return self._srtt

    def _remaining_bytes(self) -> Optional[int]:
        if self.size_bytes is None:
            return None
        return max(self.size_bytes - self.snd_nxt, 0)

    # -- sending ----------------------------------------------------------------

    def _next_new_segment_size(self) -> int:
        remaining = self._remaining_bytes()
        if remaining is None:
            return self.mss
        return min(self.mss, remaining)

    def _try_send(self) -> None:
        if self.completed:
            return
        # Compute the SACK-adjusted pipe once per call and maintain it locally
        # while sending; recomputing it for every transmitted packet would make
        # the sender quadratic in the window size.
        pipe = self.pipe_bytes
        budget_guard = 0
        while budget_guard < 100_000:
            budget_guard += 1
            # First priority: retransmit segments marked lost.
            lost = self._next_lost_segment()
            if lost is not None:
                if pipe + lost.size > self.cc.cwnd_bytes and pipe > 0:
                    break
                self._retransmit_segment(lost)
                pipe += lost.size
                continue
            # Then send new data.
            seg = self._next_new_segment_size()
            if seg <= 0:
                break
            if pipe + seg > self.cc.cwnd_bytes:
                break
            self._transmit_new(self.snd_nxt, seg)
            self.snd_nxt += seg
            pipe += seg
        self._arm_rto()

    def _next_lost_segment(self) -> Optional[_SegmentState]:
        if not self._has_lost:
            return None
        best: Optional[_SegmentState] = None
        for state in self._segments.values():
            if state.lost and not state.sacked and (best is None or state.seq < best.seq):
                best = state
        if best is None:
            self._has_lost = False
        return best

    def _make_packet(self, seq: int, size: int) -> Packet:
        return self.factory.make(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=self.dst_address,
            src_port=self.port,
            dst_port=self.dst_port,
            seq=seq,
            size=size,
            traffic_class=self.traffic_class,
            created_at=self.sim.now,
            payload={"len": size},
        )

    def _transmit_new(self, seq: int, size: int) -> None:
        now = self.sim.now
        self._segments[seq] = _SegmentState(seq=seq, size=size, sent_time=now)
        self.packets_sent += 1
        self.host.send(self._make_packet(seq, size))

    def _retransmit_segment(self, state: _SegmentState) -> None:
        state.lost = False  # back in flight; may be marked lost again later
        state.retransmitted = True
        state.sent_time = self.sim.now
        self.retransmissions += 1
        self.packets_sent += 1
        self.host.send(self._make_packet(state.seq, state.size))

    # -- receiving ACKs ------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> None:
        if not packet.is_ack or packet.flow_id != self.flow_id:
            return
        payload = packet.payload or {}
        ack = int(payload.get("ack", 0))
        sack_blocks: List[Tuple[int, int]] = list(payload.get("sack", ()))

        newly_acked = 0
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self._sample_rtt(ack, now)
            for seq in [s for s in self._segments if s < ack]:
                del self._segments[seq]
            self.snd_una = ack
            self._arm_rto(reset=True)

        self._apply_sack(sack_blocks)
        lost_found = self._detect_losses()
        if lost_found and self.snd_una >= self._recovery_until:
            # At most one congestion-window reduction per window of data.
            self.cc.on_loss(now)
            self._recovery_until = self.snd_nxt

        if newly_acked > 0:
            self.cc.on_ack(now, newly_acked, self._srtt or 0.0)
            self._finish_if_done()
        if not self.completed:
            self._try_send()

    def _apply_sack(self, blocks: List[Tuple[int, int]]) -> None:
        if not blocks or not self._segments:
            return
        self._has_sacked = True
        # Both the segment list and the SACK blocks are sorted by sequence
        # number, so one linear merge marks every covered segment.
        blocks = sorted(blocks)
        block_idx = 0
        for seq in sorted(self._segments):
            state = self._segments[seq]
            while block_idx < len(blocks) and blocks[block_idx][1] < seq + state.size:
                block_idx += 1
            if block_idx >= len(blocks):
                break
            start, end = blocks[block_idx]
            if not state.sacked and start <= seq and seq + state.size <= end:
                state.sacked = True

    def _detect_losses(self) -> bool:
        """SACK- and time-based loss detection.

        A never-retransmitted segment is lost once three segments' worth of
        data above it has been SACKed (classic SACK fast retransmit).  A
        retransmitted segment is only re-declared lost on a time basis (its
        retransmission has had ample time to be acknowledged), which recovers
        lost retransmissions without waiting for the RTO and without the
        retransmission storms that re-applying the SACK rule would cause.
        """
        if not self._segments:
            return False
        if not self._has_sacked and not self._has_lost and self.retransmissions == 0:
            # Fast path: nothing has ever been SACKed or retransmitted, so no
            # loss evidence can exist yet.
            return False
        now = self.sim.now
        reorder_window = 1.5 * (self._srtt if self._srtt is not None else INITIAL_RTO)
        highest_sacked = max(
            (s.seq + s.size for s in self._segments.values() if s.sacked), default=None
        )
        found = False
        for state in self._segments.values():
            if state.sacked or state.lost:
                continue
            if state.retransmitted:
                if now - state.sent_time > reorder_window:
                    state.lost = True
                    found = True
                continue
            if highest_sacked is not None and state.seq + REORDER_BYTES <= highest_sacked:
                state.lost = True
                found = True
        if found:
            self._has_lost = True
        return found

    def _sample_rtt(self, ack: int, now: float) -> None:
        # Use the send time of the highest segment covered by this ACK that
        # was not retransmitted (Karn's algorithm).
        candidates = [
            s for s in self._segments.values() if s.seq < ack and not s.retransmitted
        ]
        if not candidates:
            return
        newest = max(candidates, key=lambda s: s.seq)
        rtt = now - newest.sent_time
        if rtt <= 0:
            return
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(max(self._srtt + 4.0 * self._rttvar, MIN_RTO), MAX_RTO)

    # -- timers --------------------------------------------------------------------

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _arm_rto(self, reset: bool = False) -> None:
        if self.completed or self.inflight_bytes <= 0:
            self._cancel_rto()
            return
        if reset or self._rto_timer is None:
            self._cancel_rto()
            self._rto_timer = self.sim.schedule(self._rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.completed or self.inflight_bytes <= 0:
            return
        now = self.sim.now
        self.timeouts += 1
        self.cc.on_timeout(now, flight_bytes=self.inflight_bytes)
        self._rto = min(self._rto * 2.0, MAX_RTO)
        # Everything in flight is suspect after a timeout: clear SACK state and
        # mark all outstanding segments lost so they are retransmitted under
        # the (now tiny) congestion window.
        for state in self._segments.values():
            state.sacked = False
            state.lost = True
            state.retransmitted = False
        self._has_lost = bool(self._segments)
        self._has_sacked = False
        self._recovery_until = self.snd_nxt
        # _try_send re-arms the (backed-off) RTO once it has queued the
        # retransmissions; scheduling it again here would leak a second timer.
        self._try_send()

    # -- completion -------------------------------------------------------------------

    def _finish_if_done(self) -> None:
        if self.completed or self.size_bytes is None:
            return
        if self.snd_una >= self.size_bytes:
            self.completed = True
            self.complete_time = self.sim.now
            self._cancel_rto()
            if self.on_complete is not None:
                self.on_complete(self.sim.now)


class TcpReceiver:
    """Receiving side: cumulative ACKs with SACK blocks for out-of-order data."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        factory: PacketFactory,
        *,
        flow_id: int,
        port: int,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.factory = factory
        self.flow_id = flow_id
        self.port = port
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete

        self.rcv_nxt = 0
        self.bytes_received = 0
        self.packets_received = 0
        self.complete_time: Optional[float] = None
        self.completed = False
        # Out-of-order data as a sorted list of disjoint [start, end) ranges.
        self._ranges: List[List[int]] = []

        host.register_agent(port, self)

    # -- out-of-order range bookkeeping ------------------------------------------

    def _insert_range(self, start: int, end: int) -> None:
        merged: List[List[int]] = []
        placed = False
        for lo, hi in self._ranges:
            if end < lo and not placed:
                merged.append([start, end])
                placed = True
            if hi < start or end < lo:
                merged.append([lo, hi])
            else:
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append([start, end])
        merged.sort()
        # Merge adjacent/overlapping ranges produced by the insertion.
        result: List[List[int]] = []
        for lo, hi in merged:
            if result and lo <= result[-1][1]:
                result[-1][1] = max(result[-1][1], hi)
            else:
                result.append([lo, hi])
        self._ranges = result

    def _advance_cumulative(self) -> None:
        while self._ranges and self._ranges[0][0] <= self.rcv_nxt:
            lo, hi = self._ranges.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, hi)

    def sack_blocks(self) -> List[Tuple[int, int]]:
        """Current out-of-order ranges, newest-capped to the SACK block limit."""
        return [(lo, hi) for lo, hi in self._ranges[:MAX_SACK_BLOCKS]]

    # -- datapath -------------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> None:
        if packet.is_ack or packet.flow_id != self.flow_id:
            return
        self.packets_received += 1
        self.bytes_received += packet.size
        seq, size = packet.seq, packet.size
        if seq == self.rcv_nxt:
            self.rcv_nxt += size
            self._advance_cumulative()
        elif seq > self.rcv_nxt:
            self._insert_range(seq, seq + size)
        else:
            # Duplicate of already-delivered data; ACK it again.
            pass
        self._send_ack(packet)
        self._finish_if_done()

    def _send_ack(self, data_packet: Packet) -> None:
        ack = self.factory.make(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=data_packet.src,
            src_port=self.port,
            dst_port=data_packet.src_port,
            seq=self.rcv_nxt,
            size=ACK_SIZE,
            is_ack=True,
            created_at=self.sim.now,
            payload={"ack": self.rcv_nxt, "sack": self.sack_blocks()},
        )
        self.host.send(ack)

    def _finish_if_done(self) -> None:
        if self.completed or self.expected_bytes is None:
            return
        if self.rcv_nxt >= self.expected_bytes:
            self.completed = True
            self.complete_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.sim.now)
