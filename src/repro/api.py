"""``repro.api`` — the stable, typed public surface of the sweep runner.

Import from here, not from ``repro.runner.*`` internals: this facade is the
compatibility contract.  Internal modules may move or split between PRs;
every name below keeps working (or goes through a documented deprecation
cycle, like the untyped ``register_scenario(defaults={...})`` shim, which
was deprecated in the v2 redesign and has now been removed — see the
migration notes in ``docs/api.md``).

The surface, by layer:

* **Declaring scenarios** — :func:`register_scenario` with a
  :class:`ParamSpace` of :class:`ParamSpec` knobs (type, default, unit,
  choices, bounds) and a :class:`MetricSchema` of :class:`MetricSpec`
  outputs (unit, direction).  ``resolve_params`` coerces every override
  through the space, so differently-spelled values can never mint distinct
  cache keys.
* **Describing sweeps** — :class:`SweepSpec` (base / grid / zip / seeds)
  expanding into :class:`RunSpec` cells; :func:`expand_grid` /
  :func:`expand_zip` for ad-hoc expansion.
* **Executing** — :func:`run_sweep` / :func:`run_spec` over a pluggable
  :class:`ExecutionBackend` (:class:`SerialBackend`,
  :class:`ProcessPoolBackend`, :class:`DistributedBackend`, or
  ``backend="serial"|"process"|"distributed"|"auto"``), returning a
  :class:`SweepOutcome` of :class:`CellOutcome` records, each holding a
  pure :class:`RunResult` cached by content key under :class:`ResultCache`.
* **Distributing** — :class:`DistributedBackend` fans cache-missing cells
  out to worker processes over a :class:`WorkerTransport`
  (:class:`LocalSubprocessTransport` for same-host isolation,
  :class:`SSHTransport` for remote hosts parsed from
  :func:`parse_hosts` / :class:`HostSpec` specs), with heartbeat-based
  hang detection, worker quarantine, and straggler re-dispatch; the pool
  is elastic (``listen=`` admits ``workers join`` processes mid-sweep,
  leases survive connection blips, ``spill_dir=`` resumes restarted
  sweeps) and batches frames (``batch_size=``);
  ``run_sweep(on_progress=...)`` observes scheduling as
  :class:`ProgressEvent` records and ``SweepOutcome.worker_stats`` carries
  the per-worker accounting.  Deterministic fault schedules for testing
  all of this: :class:`FaultPlan` / :class:`FaultRule`
  (:mod:`repro.testing.chaos`).  See ``docs/distributed.md``.
* **Aggregating** — :func:`aggregate_results` / :func:`aggregate_outcome`
  grouping by (scenario, params) with mean / stdev / 95% CI per metric
  (:class:`AggregateCell`, :class:`MetricAggregate`), plus
  :func:`find_cell` / :func:`find_cells` lookups.
* **Exporting** — :func:`runs_long_table` / :func:`aggregates_long_table`
  (:class:`LongTable`; ``to_csv`` / ``to_jsonl``) and the
  :func:`export_runs` / :func:`export_aggregates` one-shots: long-format,
  schema-annotated tables ready for pandas.
* **Traffic traces** — the trace-driven workload subsystem
  (``docs/workloads.md``): canonical :class:`TraceEvent` records with
  streaming I/O (:func:`write_trace` / :func:`read_trace` /
  :func:`trace_digest` → :class:`TraceDigest`), deterministic generators
  (:data:`GENERATORS`, :func:`generate_trace`), trace specs
  (:func:`open_trace`), and :class:`TraceReplayWorkload`.  Scenario
  parameters of kind ``"trace"`` accept any trace spec and are
  digest-addressed in cache keys.

Quick start::

    from repro import api

    outcome = api.run_sweep(
        [api.RunSpec("fig09_slowdown", params={"mode": m}, seed=1)
         for m in ("status_quo", "bundler_sfq")],
        workers=2,
        backend="process",
    )
    cells = api.aggregate_outcome(outcome)
    print(api.export_aggregates(cells, "csv",
                                registry=api.load_builtin_scenarios()))
"""

from __future__ import annotations

from repro.runner.aggregate import (
    AggregateCell,
    MetricAggregate,
    aggregate_outcome,
    aggregate_results,
    find_cell,
    find_cells,
)
from repro.runner.backends import (
    BACKEND_CHOICES,
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    ProgressEvent,
    SerialBackend,
    WorkItem,
    WorkOutcome,
    make_backend,
)
from repro.runner.distributed import (
    DistributedBackend,
    HostSpec,
    LocalSubprocessTransport,
    SSHTransport,
    WorkerTransport,
    parse_hosts,
)
from repro.testing.chaos import (
    FaultPlan,
    FaultRule,
)
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    MANIFEST_NAME,
    CacheStats,
    GcStats,
    ResultCache,
)
from repro.runner.engine import (
    CellOutcome,
    SweepOutcome,
    effective_seed,
    execute_run,
    resolve_cell,
    run_spec,
    run_sweep,
)
from repro.runner.export import (
    EXPORT_FORMATS,
    LongTable,
    aggregates_long_table,
    export_aggregates,
    export_runs,
    runs_long_table,
)
from repro.runner.params import (
    PARAM_KINDS,
    ParamSpace,
    ParamSpec,
    ParamValidationError,
)
from repro.runner.registry import (
    REGISTRY,
    Scenario,
    ScenarioRegistry,
    load_builtin_scenarios,
    register_scenario,
)
from repro.runner.result import RunResult, run_key
from repro.runner.schema import (
    METRIC_DIRECTIONS,
    METRIC_KINDS,
    MetricSchema,
    MetricSpec,
    MetricValidationError,
)
from repro.runner.spec import RunSpec, SweepSpec, expand_grid, expand_zip
from repro.traffic import (
    GENERATORS,
    TraceDigest,
    TraceEvent,
    TraceReplayWorkload,
    generate_trace,
    open_trace,
    read_trace,
    trace_digest,
    write_trace,
)

__all__ = [
    # params
    "PARAM_KINDS",
    "ParamSpace",
    "ParamSpec",
    "ParamValidationError",
    # metric schemas
    "METRIC_DIRECTIONS",
    "METRIC_KINDS",
    "MetricSchema",
    "MetricSpec",
    "MetricValidationError",
    # registry
    "REGISTRY",
    "Scenario",
    "ScenarioRegistry",
    "load_builtin_scenarios",
    "register_scenario",
    # specs
    "RunSpec",
    "SweepSpec",
    "expand_grid",
    "expand_zip",
    # engine + backends
    "BACKENDS",
    "BACKEND_CHOICES",
    "CellOutcome",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ProgressEvent",
    "SerialBackend",
    "SweepOutcome",
    "WorkItem",
    "WorkOutcome",
    "effective_seed",
    "execute_run",
    "make_backend",
    "resolve_cell",
    "run_spec",
    "run_sweep",
    # distributed dispatch
    "DistributedBackend",
    "HostSpec",
    "LocalSubprocessTransport",
    "SSHTransport",
    "WorkerTransport",
    "parse_hosts",
    # deterministic fault injection (repro.testing.chaos)
    "FaultPlan",
    "FaultRule",
    # results + cache
    "DEFAULT_CACHE_DIR",
    "MANIFEST_NAME",
    "CacheStats",
    "GcStats",
    "ResultCache",
    "RunResult",
    "run_key",
    # aggregation
    "AggregateCell",
    "MetricAggregate",
    "aggregate_outcome",
    "aggregate_results",
    "find_cell",
    "find_cells",
    # exports
    "EXPORT_FORMATS",
    "LongTable",
    "aggregates_long_table",
    "export_aggregates",
    "export_runs",
    "runs_long_table",
    # traffic traces
    "GENERATORS",
    "TraceDigest",
    "TraceEvent",
    "TraceReplayWorkload",
    "generate_trace",
    "open_trace",
    "read_trace",
    "trace_digest",
    "write_trace",
]
