"""Nodes: hosts, routers and middlebox attachment points.

* :class:`Host` terminates traffic: transports register themselves on a
  port, and the host delivers arriving packets to the matching agent.
* :class:`Router` forwards packets according to a static routing table with
  optional equal-cost multipath (ECMP) groups — per-flow or per-packet load
  balancing, which is what creates the imbalanced-multipath scenarios of
  §5.2 / §7.6.
* Both support *taps*: callbacks invoked for every packet that arrives at
  the node.  The Bundler receivebox is a tap (it passively observes packets,
  like the libpcap receivebox of the prototype), and tests use taps to
  capture traffic without disturbing it.

Addresses are small integers assigned by the topology builder; they play the
role of IP addresses in the epoch-boundary hash.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator

class Node:
    """Base class for anything that can receive packets."""

    def __init__(self, sim: Simulator, name: str, address: Optional[int] = None) -> None:
        self.sim = sim
        self.name = name
        self.address = address if address is not None else sim.next_address()
        self._taps: List[Callable[[Packet, float], None]] = []
        self._agents: Dict[int, object] = {}
        self.packets_received = 0

    def add_tap(self, tap: Callable[[Packet, float], None]) -> None:
        """Register a passive observer called for every arriving packet."""
        self._taps.append(tap)

    def register_agent(self, port: int, agent) -> None:
        """Attach an agent (transport endpoint) listening on ``port``."""
        if port in self._agents:
            raise ValueError(f"port {port} already has an agent on {self.name}")
        self._agents[port] = agent

    def deregister_agent(self, port: int) -> None:
        self._agents.pop(port, None)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, addr={self.address})"


class Host(Node):
    """An endpoint: terminates flows and originates traffic on a default link."""

    def __init__(self, sim: Simulator, name: str, address: Optional[int] = None) -> None:
        super().__init__(sim, name, address)
        self.egress: Optional[Link] = None
        #: Optional recycle hook (e.g. ``factory.recycle``): called after a
        #: packet is delivered locally, when this host is the packet's final
        #: owner.  Only set it when no agent on this host retains packets
        #: (see PacketFactory pooling).
        self.recycler: Optional[Callable[[Packet], None]] = None

    def attach_egress(self, link: Link) -> None:
        """Set the link this host uses to send traffic."""
        self.egress = link

    def send(self, packet: Packet) -> bool:
        """Transmit a packet on the host's egress link."""
        if self.egress is None:
            raise RuntimeError(f"host {self.name} has no egress link")
        return self.egress.send(packet)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        # Hot path: taps and local delivery are inlined (no helper calls).
        now = self.sim._now
        self.packets_received += 1
        if self._taps:
            for tap in self._taps:
                tap(packet, now)
        agent = self._agents.get(packet.dst_port)
        if agent is not None:
            agent.on_packet(packet, now)
        if self.recycler is not None:
            self.recycler(packet)


class EcmpGroup:
    """A set of parallel next-hop links with a load-balancing policy.

    ``mode`` is either ``"flow"`` (hash the flow identity, so all packets of
    a connection follow one path — the common case the paper's Scamper study
    observed) or ``"packet"`` (spread packets round-robin, which maximizes
    reordering and is used to stress the multipath detector).
    ``weights`` optionally skews the flow-hash split.
    """

    def __init__(
        self,
        links: Sequence[Link],
        mode: str = "flow",
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not links:
            raise ValueError("ECMP group needs at least one link")
        if mode not in ("flow", "packet"):
            raise ValueError(f"unknown ECMP mode: {mode}")
        self.links = list(links)
        self.mode = mode
        self._rr = 0
        if weights is None:
            self.weights = [1.0] * len(self.links)
        else:
            if len(weights) != len(self.links):
                raise ValueError("weights must match number of links")
            self.weights = list(weights)
        total = sum(self.weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w / total
            self._cumulative.append(acc)

    def pick(self, packet: Packet) -> Link:
        # Single-member groups (every plain `add_route`) need no balancing
        # decision at all — skip the flow hash and the weight walk.
        if len(self.links) == 1:
            return self.links[0]
        if self.mode == "packet":
            link = self.links[self._rr % len(self.links)]
            self._rr += 1
            return link
        # Flow mode: map the flow hash into [0, 1) and pick by cumulative weight.
        point = (packet.flow_hash() % 65536) / 65536.0
        for link, boundary in zip(self.links, self._cumulative, strict=True):
            if point < boundary:
                return link
        return self.links[-1]


class Router(Node):
    """Static-routing packet forwarder with optional ECMP groups."""

    def __init__(self, sim: Simulator, name: str, address: Optional[int] = None) -> None:
        super().__init__(sim, name, address)
        self._routes: Dict[int, EcmpGroup] = {}
        self._default: Optional[EcmpGroup] = None
        self.packets_forwarded = 0

    def add_route(self, dst_address: int, link: Link) -> None:
        """Route packets destined to ``dst_address`` over ``link``."""
        self._routes[dst_address] = EcmpGroup([link])

    def add_ecmp_route(
        self,
        dst_address: int,
        links: Sequence[Link],
        mode: str = "flow",
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Route packets for ``dst_address`` across several parallel links."""
        self._routes[dst_address] = EcmpGroup(links, mode=mode, weights=weights)

    def set_default_route(self, link: Link) -> None:
        self._default = EcmpGroup([link])

    def route_for(self, packet: Packet) -> Optional[Link]:
        group = self._routes.get(packet.dst, self._default)
        if group is None:
            return None
        return group.pick(packet)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        now = self.sim._now
        self.packets_received += 1
        if self._taps:
            for tap in self._taps:
                tap(packet, now)
        if packet.dst == self.address:
            agent = self._agents.get(packet.dst_port)
            if agent is not None:
                agent.on_packet(packet, now)
            return
        out = self.route_for(packet)
        if out is None:
            # No route: drop.  Topology builders are expected to provide full
            # reachability, so this usually indicates a test configuration bug.
            return
        self.packets_forwarded += 1
        out.send(packet)

    def inject(self, packet: Packet) -> None:
        """Originate a packet from this node (used by middlebox control planes)."""
        self.receive(packet, None)
