"""Links: rate + propagation delay + a queueing discipline.

A :class:`Link` is unidirectional.  Packets handed to :meth:`Link.send` are
enqueued into the link's qdisc; the link serializes packets at its configured
rate and delivers them to the downstream node after the propagation delay.

The qdisc is pluggable (anything implementing the interface in
:mod:`repro.qdisc.base`), which is how both the plain bottleneck (drop-tail
FIFO, or fair queueing for the "In-Network" baseline) and the Bundler sendbox
(token bucket + scheduling policy) are modelled.

Shaping qdiscs (the token bucket) may decline to release a packet even when
they have a backlog; in that case the link re-polls the qdisc at the time the
qdisc reports the next packet could become available.  Control-plane code
that changes a qdisc's rate must call :meth:`Link.kick` so a waiting link
notices the new schedule immediately.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.net.simulator import CancelToken, Simulator
from repro.net.trace import QueueMonitor, RateMonitor


class Link:
    """A unidirectional link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay: float,
        qdisc,
        *,
        monitor: Optional[QueueMonitor] = None,
        rate_monitor: Optional[RateMonitor] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay = delay
        self.qdisc = qdisc
        self.dst_node = None
        self.monitor = monitor or QueueMonitor(enabled=False)
        self.rate_monitor = rate_monitor or RateMonitor()
        self._busy = False
        self._retry_token: Optional[CancelToken] = None
        self._transmit_hooks: List[Callable[[Packet, float], None]] = []
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        sim.observe_link(self)

    def connect(self, dst_node) -> "Link":
        """Attach the downstream node; returns ``self`` for chaining."""
        self.dst_node = dst_node
        return self

    def add_transmit_hook(self, hook: Callable[[Packet, float], None]) -> None:
        """Register a callback invoked when a packet begins transmission.

        The Bundler sendbox uses this to record ``t_sent`` for epoch boundary
        packets at the moment they leave the shaping queue (§4.5 / Figure 4).
        """
        self._transmit_hooks.append(hook)

    # -- datapath ---------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.  Returns False if it was dropped."""
        now = self.sim.now
        packet.enqueued_at = now
        accepted = self.qdisc.enqueue(packet, now)
        if not accepted:
            self.packets_dropped += 1
            self.monitor.on_drop(now)
            return False
        self.monitor.on_enqueue(now, self.qdisc.backlog_bytes)
        if not self._busy:
            self._try_transmit()
        return True

    def kick(self) -> None:
        """Re-evaluate the transmit schedule (call after changing qdisc rates)."""
        if not self._busy:
            self._try_transmit()

    def _cancel_retry(self) -> None:
        if self._retry_token is not None:
            self._retry_token.cancel()
            self._retry_token = None

    def _try_transmit(self) -> None:
        if self._busy:
            return
        self._cancel_retry()
        now = self.sim.now
        packet = self.qdisc.dequeue(now)
        if packet is None:
            if len(self.qdisc) > 0:
                ready = self.qdisc.next_ready_time(now)
                if ready is not None:
                    # Never re-poll at the exact current time: a qdisc whose
                    # accounting momentarily disagrees with its contents would
                    # otherwise livelock the event loop.
                    self._retry_token = self.sim.at(max(ready, now + 1e-6), self._try_transmit)
            return
        wait = now - packet.enqueued_at
        self.monitor.on_dequeue(now, wait, self.qdisc.backlog_bytes)
        for hook in self._transmit_hooks:
            hook(packet, now)
        self._busy = True
        tx_time = packet.size * 8.0 / self.rate_bps
        self.sim.schedule(tx_time, lambda: self._finish_transmit(packet))

    def _finish_transmit(self, packet: Packet) -> None:
        now = self.sim.now
        self._busy = False
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.rate_monitor.on_delivery(now, packet.size)
        if self.dst_node is not None:
            self.sim.schedule(self.delay, lambda: self.dst_node.receive(packet, self))
        self._try_transmit()

    # -- introspection ----------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued at this link."""
        return self.qdisc.backlog_bytes

    @property
    def backlog_packets(self) -> int:
        """Packets currently queued at this link."""
        return len(self.qdisc)

    def utilization(self, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds of simulation."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return (self.bytes_sent * 8.0 / duration) / self.rate_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.rate_bps / 1e6:.1f}Mbit/s, {self.delay * 1e3:.1f}ms)"
