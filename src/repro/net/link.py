"""Links: rate + propagation delay + a queueing discipline.

A :class:`Link` is unidirectional.  Packets handed to :meth:`Link.send` are
enqueued into the link's qdisc; the link serializes packets at its configured
rate and delivers them to the downstream node after the propagation delay.

The qdisc is pluggable (anything implementing the interface in
:mod:`repro.qdisc.base`), which is how both the plain bottleneck (drop-tail
FIFO, or fair queueing for the "In-Network" baseline) and the Bundler sendbox
(token bucket + scheduling policy) are modelled.

Shaping qdiscs (the token bucket) may decline to release a packet even when
they have a backlog; in that case the link re-polls the qdisc at the time the
qdisc reports the next packet could become available.  Control-plane code
that changes a qdisc's rate must call :meth:`Link.kick` so a waiting link
notices the new schedule immediately.

The datapath is closure-free and batched (see ``docs/simcore.md``): finish
and delivery events are pushed as ``(fn, args)`` heap entries, and
:meth:`Link._finish_transmit` drains back-to-back departures inline whenever
the entry it just pushed is still the heap top — an identity check that makes
batching provably order-identical to popping one event per step.  Zero-delay
delivery hops are executed inline under the same gate.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.net.simulator import CancelToken, Simulator
from repro.net.trace import QueueMonitor, RateMonitor


class Link:
    """A unidirectional link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay: float,
        qdisc,
        *,
        monitor: Optional[QueueMonitor] = None,
        rate_monitor: Optional[RateMonitor] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay = delay
        self.qdisc = qdisc
        self.dst_node = None
        self.monitor = monitor or QueueMonitor(enabled=False)
        self.rate_monitor = rate_monitor or RateMonitor()
        self._busy = False
        self._retry_token: Optional[CancelToken] = None
        self._transmit_hooks: List[Callable[[Packet, float], None]] = []
        #: Optional recycle hook (e.g. ``factory.recycle``): called when
        #: this link drops an arrival at enqueue, the one point where the
        #: link owns a dead packet (see PacketFactory pooling).
        self.drop_recycler: Optional[Callable[[Packet], None]] = None
        #: Optional probe hook (:mod:`repro.obs.probe`): called with the
        #: drop instant when an arrival is rejected at enqueue — a pure
        #: observer, set by the probe layer at ``observe_link`` time.
        self.drop_probe: Optional[Callable[[float], None]] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        sim.observe_link(self)

    def connect(self, dst_node) -> "Link":
        """Attach the downstream node; returns ``self`` for chaining."""
        self.dst_node = dst_node
        return self

    def add_transmit_hook(self, hook: Callable[[Packet, float], None]) -> None:
        """Register a callback invoked when a packet begins transmission.

        The Bundler sendbox uses this to record ``t_sent`` for epoch boundary
        packets at the moment they leave the shaping queue (§4.5 / Figure 4).
        """
        self._transmit_hooks.append(hook)

    # -- datapath ---------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.  Returns False if it was dropped."""
        now = self.sim._now
        packet.enqueued_at = now
        if not self.qdisc.enqueue(packet, now):
            self.packets_dropped += 1
            self.monitor.on_drop(now)
            if self.drop_probe is not None:
                self.drop_probe(now)
            if self.drop_recycler is not None:
                self.drop_recycler(packet)
            return False
        self.monitor.on_enqueue(now, self.qdisc.backlog_bytes)
        if not self._busy:
            self._try_transmit()
        return True

    def kick(self) -> None:
        """Re-evaluate the transmit schedule (call after changing qdisc rates)."""
        if not self._busy:
            self._try_transmit()

    def _cancel_retry(self) -> None:
        if self._retry_token is not None:
            self._retry_token.cancel()
            self._retry_token = None

    def _try_transmit(self) -> None:
        """Start transmitting the next packet, if the qdisc releases one.

        Never batches: callers (``send``, ``kick``, the retry timer) continue
        executing at the current instant after this returns, so the clock
        must not move under them.  Batched drain lives in
        :meth:`_finish_transmit`, which only ever runs as the tail of a
        finish event.
        """
        if self._busy:
            return
        if self._retry_token is not None:
            self._retry_token.cancel()
            self._retry_token = None
        now = self.sim._now
        packet = self.qdisc.dequeue(now)
        if packet is None:
            if len(self.qdisc) > 0:
                ready = self.qdisc.next_ready_time(now)
                if ready is not None:
                    # Never re-poll at the exact current time: a qdisc whose
                    # accounting momentarily disagrees with its contents would
                    # otherwise livelock the event loop.
                    self._retry_token = self.sim.at(max(ready, now + 1e-6), self._try_transmit)
            return
        wait = now - packet.enqueued_at
        self.monitor.on_dequeue(now, wait, self.qdisc.backlog_bytes)
        for hook in self._transmit_hooks:
            hook(packet, now)
        self._busy = True
        tx_time = packet.size * 8.0 / self.rate_bps
        self.sim.schedule_call(tx_time, self._finish_transmit, packet)

    def _finish_transmit(self, packet: Packet) -> None:
        """Complete ``packet``'s serialization; drain the backlog batched.

        Each loop iteration reproduces the historical event sequence for one
        departure *in the exact order the closure-based datapath pushed it*:
        delivery first, then the next packet's finish.  Inlining then only
        happens under heap-top identity gates:

        * the zero-delay delivery hop is executed in place iff its entry is
          the very next event (nothing else is queued at the current
          instant), and
        * the next finish event is popped and folded into this loop iff its
          entry is still the heap top after delivery ran (no event —
          including anything the delivery's receive path just scheduled —
          lands at or before it) and it does not overrun the active run
          bound.

        Both gates compare against events the old datapath would have popped
        next anyway, so batching is byte-for-byte order-identical; inlined
        entries are counted in ``events_processed`` to keep event counts
        comparable.  See docs/simcore.md.
        """
        sim = self.sim
        stats = sim.stats
        queue = sim._queue
        counter = sim._counter
        qdisc = self.qdisc
        rate_bps = self.rate_bps
        while True:
            now = sim._now
            self._busy = False
            size = packet.size
            self.bytes_sent += size
            self.packets_sent += 1
            self.rate_monitor.on_delivery(now, size)
            dst = self.dst_node
            deliver_entry = None
            if dst is not None:
                stats.events_scheduled += 1
                deliver_entry = (now + self.delay, next(counter), None, dst.receive, (packet, self))
                heappush(queue, deliver_entry)
            # Start the next transmission (the old inline _try_transmit):
            # the finish entry is pushed *after* the delivery entry, exactly
            # as the closure datapath ordered them.
            finish_entry = None
            nxt = qdisc.dequeue(now)
            if nxt is None:
                if len(qdisc) > 0:
                    ready = qdisc.next_ready_time(now)
                    if ready is not None:
                        self._retry_token = sim.at(max(ready, now + 1e-6), self._try_transmit)
            else:
                wait = now - nxt.enqueued_at
                self.monitor.on_dequeue(now, wait, qdisc.backlog_bytes)
                for hook in self._transmit_hooks:
                    hook(nxt, now)
                self._busy = True
                stats.events_scheduled += 1
                finish_entry = (
                    now + nxt.size * 8.0 / rate_bps,
                    next(counter),
                    None,
                    self._finish_transmit,
                    (nxt,),
                )
                heappush(queue, finish_entry)
            if deliver_entry is not None and queue[0] is deliver_entry and self.delay == 0.0:
                # Zero-delay hop: the delivery is the very next event, so run
                # it in place instead of round-tripping through the heap.
                heappop(queue)
                stats.events_processed += 1
                dst.receive(packet, self)
            if finish_entry is None:
                return
            until = sim._until
            if queue[0] is finish_entry and (until is None or finish_entry[0] <= until):
                heappop(queue)
                stats.events_processed += 1
                sim.advance(finish_entry[0])
                packet = nxt
                continue
            return

    # -- introspection ----------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued at this link."""
        return self.qdisc.backlog_bytes

    @property
    def backlog_packets(self) -> int:
        """Packets currently queued at this link."""
        return len(self.qdisc)

    def utilization(self, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds of simulation."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return (self.bytes_sent * 8.0 / duration) / self.rate_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.rate_bps / 1e6:.1f}Mbit/s, {self.delay * 1e3:.1f}ms)"
