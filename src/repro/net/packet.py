"""Packet model.

A packet carries the header fields that matter for Bundler's measurement
machinery and for the transports:

* ``src`` / ``dst`` — integer host addresses (stand-ins for IP addresses).
* ``src_port`` / ``dst_port`` — transport ports, used for flow hashing
  (SFQ, ECMP) and for delivery to the right agent on a host.
* ``ip_id`` — the IPv4 identification field.  The prototype hashes
  ``(IP ID, dst IP, dst port)`` to find epoch boundaries (§4.5); the IP ID is
  what differentiates individual packets of the same flow and distinguishes
  retransmissions from originals.
* ``flow_id`` / ``seq`` / ``is_ack`` — transport bookkeeping.
* ``size`` — wire size in bytes.

Packets are mutable but the convention is that only the creating transport
writes transport fields; middleboxes (the sendbox/receivebox) never modify
packets, mirroring Bundler's transparent design (§4.6).

Hot-path notes: the epoch-boundary and flow hashes are cached per packet
(the header fields they cover never change once a packet is in flight — the
sendbox and receivebox would otherwise re-hash every packet), ``meta`` is
lazily allocated (the common packet never needs it; CoDel keeps its sojourn
timestamp in the dedicated ``codel_ts`` slot instead), and
:class:`PacketFactory` optionally recycles delivered/dropped packets through
a bounded free list.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from repro.util.fnv import hash_fields


class Packet:
    """A single packet in flight."""

    __slots__ = (
        "pkt_id",
        "flow_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "ip_id",
        "seq",
        "size",
        "is_ack",
        "is_control",
        "traffic_class",
        "created_at",
        "enqueued_at",
        "payload",
        "codel_ts",
        "_meta",
        "_header_hash",
        "_flow_hash",
    )

    def __init__(
        self,
        *,
        pkt_id: int,
        flow_id: int,
        src: int,
        dst: int,
        src_port: int,
        dst_port: int,
        ip_id: int,
        seq: int = 0,
        size: int = 1500,
        is_ack: bool = False,
        is_control: bool = False,
        traffic_class: int = 0,
        created_at: float = 0.0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.pkt_id = pkt_id
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.ip_id = ip_id
        self.seq = seq
        self.size = size
        self.is_ack = is_ack
        self.is_control = is_control
        self.traffic_class = traffic_class
        self.created_at = created_at
        self.enqueued_at = 0.0
        self.payload = payload
        self._meta: Optional[Dict[str, Any]] = None
        self._header_hash: Optional[int] = None
        self._flow_hash: Optional[int] = None

    @property
    def meta(self) -> Dict[str, Any]:
        """Free-form per-packet annotations, allocated on first use."""
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    def header_hash(self) -> int:
        """FNV-1a hash of the header subset used for epoch boundary identification.

        The subset is ``(ip_id, dst, dst_port)`` as in the paper's prototype
        (§4.5): identical at both boxes, unchanged in transit, per-packet
        (thanks to the IP ID), and different for retransmissions.  Those
        fields are immutable once the packet is in flight, so the hash is
        computed once and cached — the sendbox and receivebox both hash
        every packet they see.
        """
        cached = self._header_hash
        if cached is None:
            cached = self._header_hash = hash_fields((self.ip_id, self.dst, self.dst_port))
        return cached

    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """(src, dst, src_port, dst_port, flow_id) — used by per-flow hashing."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.flow_id)

    def flow_hash(self) -> int:
        """Hash of the flow identity (not per-packet), used by SFQ and ECMP."""
        cached = self._flow_hash
        if cached is None:
            cached = self._flow_hash = hash_fields(
                (self.src, self.dst, self.src_port, self.dst_port)
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else ("CTL" if self.is_control else "DATA")
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.seq} "
            f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port} "
            f"size={self.size} ip_id={self.ip_id})"
        )


class PacketFactory:
    """Creates packets with unique packet ids and per-source IP IDs.

    Real IPv4 senders increment the IP ID per packet; the factory reproduces
    that behaviour per source address (wrapping at 16 bits), which gives the
    epoch hash the per-packet entropy it needs.

    With ``pool_size > 0`` the factory keeps a bounded free list: sinks that
    *own* a dead packet (delivery to a consuming agent, a drop) may hand it
    back via :meth:`recycle`, and :meth:`make` then re-initializes a pooled
    instance instead of allocating.  Identifier allocation (packet id, IP
    ID) is identical on both paths, so pooling never changes simulation
    results — only allocation counts.  It is off by default because
    recycling is only safe when no component retains a reference to the
    packet (a TCP sender's retransmit buffer does, for example); scenarios
    opt in at the sinks they control (``Host.recycler``,
    ``Link.drop_recycler``).
    """

    def __init__(self, pool_size: int = 0) -> None:
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        self._pkt_ids = itertools.count(1)
        self._ip_ids: Dict[int, int] = {}
        self.pool_size = pool_size
        self._pool: list = []
        self.pool_hits = 0
        self.pool_returns = 0

    def next_ip_id(self, src: int) -> int:
        current = self._ip_ids.get(src, 0)
        self._ip_ids[src] = (current + 1) & 0xFFFF
        return current

    def recycle(self, packet: Packet) -> None:
        """Return a dead packet to the free list (bounded; excess is dropped).

        The caller asserts ownership: nothing else may hold a reference to
        ``packet`` after this call.
        """
        if len(self._pool) < self.pool_size:
            self._pool.append(packet)
            self.pool_returns += 1

    def make(
        self,
        *,
        flow_id: int,
        src: int,
        dst: int,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        size: int = 1500,
        is_ack: bool = False,
        is_control: bool = False,
        traffic_class: int = 0,
        created_at: float = 0.0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Packet:
        """Create a packet, assigning a fresh packet id and IP ID."""
        pool = self._pool
        if pool:
            packet = pool.pop()
            self.pool_hits += 1
            packet.pkt_id = next(self._pkt_ids)
            packet.flow_id = flow_id
            packet.src = src
            packet.dst = dst
            packet.src_port = src_port
            packet.dst_port = dst_port
            packet.ip_id = self.next_ip_id(src)
            packet.seq = seq
            packet.size = size
            packet.is_ack = is_ack
            packet.is_control = is_control
            packet.traffic_class = traffic_class
            packet.created_at = created_at
            packet.enqueued_at = 0.0
            packet.payload = payload
            packet._meta = None
            packet._header_hash = None
            packet._flow_hash = None
            return packet
        return Packet(
            pkt_id=next(self._pkt_ids),
            flow_id=flow_id,
            src=src,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            ip_id=self.next_ip_id(src),
            seq=seq,
            size=size,
            is_ack=is_ack,
            is_control=is_control,
            traffic_class=traffic_class,
            created_at=created_at,
            payload=payload,
        )
