"""Packet-level discrete-event network simulator.

This subpackage is the substrate that replaces the paper's mahimahi
emulation and Linux networking stack.  It provides:

* :mod:`repro.net.simulator` — the event loop.
* :mod:`repro.net.packet` — the packet model (header fields used by the
  epoch-boundary hash, sizes, flow identifiers).
* :mod:`repro.net.link` — rate/propagation-delay links with pluggable
  queueing disciplines and per-queue monitoring.
* :mod:`repro.net.node` — hosts, routers (with static and ECMP routing) and
  generic middlebox hooks.
* :mod:`repro.net.topology` — canonical topologies used by the evaluation
  (site-to-site dumbbell, multipath, multi-site).
* :mod:`repro.net.trace` — queue-delay and throughput monitors.
"""

from repro.net.simulator import Simulator
from repro.net.packet import Packet, PacketFactory
from repro.net.link import Link
from repro.net.node import Host, Node, Router
from repro.net.trace import QueueMonitor, RateMonitor, TimeSeries

__all__ = [
    "Simulator",
    "Packet",
    "PacketFactory",
    "Link",
    "Node",
    "Host",
    "Router",
    "QueueMonitor",
    "RateMonitor",
    "TimeSeries",
]
