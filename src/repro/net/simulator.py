"""Discrete-event simulation core.

The simulator is a classic calendar queue built on :mod:`heapq`.  Every
component (links, transports, Bundler control planes, workload generators)
schedules callbacks on a shared :class:`Simulator` instance.  Simulated time
is a float number of seconds.

Three scheduling idioms are supported:

* hot-path one-shot calls via :meth:`Simulator.schedule_call` /
  :meth:`Simulator.at_call`, which take ``(fn, *args)`` directly so callers
  schedule bound methods without allocating a closure or a cancel handle
  per packet;
* cancellable one-shot callbacks via :meth:`Simulator.schedule` /
  :meth:`Simulator.at`, which allocate and return a :class:`CancelToken`;
* recurring timers via :meth:`Simulator.every`, a single self-rescheduling
  tick object — this is how the sendbox control plane gets invoked every
  10 ms (§6.2) and how monitors sample queue state.

Heap entries are plain ``(time, seq, token, fn, args)`` tuples: the
monotonically increasing ``seq`` both breaks ties (events scheduled for the
same instant fire in insertion order, which keeps runs deterministic for a
fixed seed) and guarantees tuple comparison never reaches the
non-comparable ``token``/``fn`` slots, so ``heapq`` stays entirely in C.
``token`` is ``None`` unless the caller asked for a cancel handle.

See ``docs/simcore.md`` for the event-loop design, the determinism
contract, and how batched datapaths (``net/link.py``) interact with
:meth:`Simulator.advance`.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.collect import current_collector
from repro.obs.stats import SimStats


class CancelToken:
    """Handle returned by scheduling calls; allows cancelling a pending event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the associated callback from running."""
        self.cancelled = True


class _PeriodicTimer:
    """Self-rescheduling tick object behind :meth:`Simulator.every`.

    One instance serves the timer's whole lifetime: each firing runs the
    callback and pushes the next tick as a plain ``(fn, args)`` event — no
    per-tick closures or cancel tokens.  Tick times are computed as
    ``origin + k * interval`` (never by repeatedly adding ``interval``),
    so a 10 ms control timer lands exactly on epoch boundaries even after
    millions of ticks instead of accumulating float drift.

    Exposes the same ``cancel()`` / ``cancelled`` surface as
    :class:`CancelToken`.  Matching the previous semantics, cancellation
    and the ``end`` bound are checked when a tick *fires*, not when it is
    scheduled.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_origin", "_end", "_k", "cancelled")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        start: Optional[float],
        end: Optional[float],
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._end = end
        self.cancelled = False
        # ``origin + k * interval`` with k starting at 1 reproduces the
        # default first tick at ``now + interval``; an explicit ``start``
        # anchors the grid at the requested first firing instead.
        if start is None:
            self._origin = sim._now
            self._k = 1
        else:
            self._origin = start
            self._k = 0
        sim.at_call(self._origin + self._k * self._interval, self._tick)

    def cancel(self) -> None:
        """Stop the timer; the already-scheduled tick fires but does nothing."""
        self.cancelled = True

    def _tick(self) -> None:
        if self.cancelled:
            return
        when = self._origin + self._k * self._interval
        if self._end is not None and when >= self._end:
            return
        self._callback()
        self._k += 1
        self._sim.at_call(self._origin + self._k * self._interval, self._tick)


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        # Heap entries: (time, seq, Optional[CancelToken], fn, args).
        self._queue: List[Tuple[float, int, Optional[CancelToken], Callable[..., None], tuple]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._until: Optional[float] = None
        #: Hot-path counters (see :mod:`repro.obs.stats`): always present,
        #: incremented inline by the event loop.
        self.stats = SimStats()
        # Components register here so the observability layer can fold
        # their existing counters into a run snapshot *after* the run —
        # nothing is counted per packet on their behalf.
        self.observed_links: List[Any] = []
        self.observed_flows: List[Any] = []
        self.observed_bundles: List[Any] = []
        #: In-simulation probe set (:mod:`repro.obs.probe`), installed by
        #: the telemetry collector when ``REPRO_PROBES`` is enabled.  Pure
        #: reads on the tick grid — ``None`` costs one attribute check per
        #: ``run()``/``observe_*`` call and nothing per event.
        self.probe: Optional[Any] = None
        collector = current_collector()
        if collector is not None:
            collector.register_simulator(self)
        # Identifier allocators scoped to this simulation.  These used to be
        # module-level globals, which made node addresses, flow ids and ports
        # depend on how many simulations the process had already run — and,
        # since addresses and ports feed the epoch-boundary and SFQ hashes,
        # made nominally identical runs diverge.  Per-instance counters keep
        # a run a pure function of its configuration and seed.
        self._address_ids = itertools.count(1)
        self._flow_ids = itertools.count(1)
        self._port_ids = itertools.count(20_000)

    def next_address(self) -> int:
        """Allocate a node address unique within this simulation."""
        return next(self._address_ids)

    def next_flow_id(self) -> int:
        """Allocate a flow identifier unique within this simulation."""
        return next(self._flow_ids)

    def next_port(self) -> int:
        """Allocate a port number unique within this simulation."""
        return next(self._port_ids)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for profiling tests)."""
        return self.stats.events_processed

    @property
    def run_bound(self) -> Optional[float]:
        """The ``until`` bound of the active :meth:`run`, or ``None``.

        Batched datapaths must not advance the clock past this bound (see
        :meth:`advance`).
        """
        return self._until

    # -- component registration (observability) ---------------------------

    def observe_link(self, link) -> None:
        """Register a link so its counters appear in run telemetry.

        The link's qdisc is *not* captured here: control planes swap a
        link's qdisc after construction (the sendbox installs its token
        bucket over the egress FIFO), so qdiscs are discovered from the
        registered links at snapshot time instead.
        """
        self.observed_links.append(link)
        if self.probe is not None:
            self.probe.on_link(link)

    def observe_flow(self, flow) -> None:
        """Register a transport endpoint (TCP sender, paced UDP stream)."""
        self.observed_flows.append(flow)
        if self.probe is not None:
            self.probe.on_flow(flow)

    def observe_bundle(self, sendbox) -> None:
        """Register a Bundler sendbox for epoch accounting."""
        self.observed_bundles.append(sendbox)
        if self.probe is not None:
            self.probe.on_bundle(sendbox)

    # -- scheduling --------------------------------------------------------

    def at(self, time: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` at absolute ``time``; returns a cancel handle.

        Scheduling in the past raises ``ValueError`` — such bugs otherwise
        silently reorder the event stream.
        """
        now = self._now
        if time < now:
            if time < now - 1e-12:
                raise ValueError(
                    f"cannot schedule event in the past (now={now:.9f}, requested={time:.9f})"
                )
            time = now
        token = CancelToken()
        self.stats.events_scheduled += 1
        heapq.heappush(self._queue, (time, next(self._counter), token, callback, ()))
        return token

    def at_call(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` with no cancel handle.

        The hot-path variant of :meth:`at`: no closure, no token — callers
        pass a bound method and its arguments directly.
        """
        now = self._now
        if time < now:
            if time < now - 1e-12:
                raise ValueError(
                    f"cannot schedule event in the past (now={now:.9f}, requested={time:.9f})"
                )
            time = now
        self.stats.events_scheduled += 1
        heapq.heappush(self._queue, (time, next(self._counter), None, fn, args))

    def schedule(self, delay: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, callback)

    def schedule_call(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now, no cancel handle."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.stats.events_scheduled += 1
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), None, fn, args)
        )

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> _PeriodicTimer:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Parameters
        ----------
        interval:
            Seconds between invocations; must be positive.
        start:
            Absolute time of the first invocation (defaults to ``now + interval``).
        end:
            If given, no invocation is scheduled at or after this time.

        Returns
        -------
        _PeriodicTimer
            Cancel handle (same ``cancel()`` surface as :class:`CancelToken`).
            Tick times are computed as ``first + k * interval``, so they do
            not accumulate float drift.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        return _PeriodicTimer(self, interval, callback, start, end)

    # -- batched-datapath hooks (see net/link.py and docs/simcore.md) ------

    def advance(self, time: float) -> None:
        """Move the clock to ``time`` without popping an event.

        Only batched datapaths may call this, and only under the batching
        contract: ``now <= time``, ``time`` strictly precedes the next
        heap event (:meth:`next_event_time`), and ``time`` does not exceed
        the active :attr:`run_bound`.  Under those conditions no scheduled
        callback can observe the skipped instants, so inlining the work is
        byte-for-byte equivalent to popping one event per step.
        """
        self._now = time

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event, or ``None`` if drained.

        Cancelled events still occupy their heap slot, so this is a lower
        bound on the next *live* callback — exactly what the batching gate
        needs (it only ever refuses to batch too eagerly, never reorders).
        """
        queue = self._queue
        return queue[0][0] if queue else None

    # -- event loop --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value (events at
            exactly ``until`` still run).  If ``None``, run until the event
            queue drains.
        max_events:
            Safety limit on the number of events popped by this call (inline
            work batched by datapaths is counted in ``events_processed`` but
            not against this limit).

        Returns
        -------
        float
            The simulated time at which the run stopped.
        """
        self._running = True
        self._until = until
        if self.probe is not None and until is not None and max_events is None:
            # Arm the sampling grid for this run only.  Unbounded runs get
            # no timer (it would keep the queue from draining), and
            # max_events runs are stepping/debugging — extra probe events
            # would change which simulation events fit under the limit.
            self.probe.on_run(until)
        executed = 0
        stats = self.stats
        queue = self._queue
        pop = heapq.heappop
        started = perf_counter()  # repro: noqa[RPR001] -- wall-clock telemetry only: feeds stats.run_wall_s in the cache-record envelope, never simulated state
        try:
            while queue:
                head = queue[0]
                time = head[0]
                if until is not None and time > until:
                    self._now = until
                    break
                pop(queue)
                token = head[2]
                if token is not None and token.cancelled:
                    stats.events_cancelled += 1
                    continue
                self._now = time
                head[3](*head[4])
                stats.events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            self._until = None
            stats.run_calls += 1
            stats.run_wall_s += perf_counter() - started  # repro: noqa[RPR001] -- wall-clock telemetry only: run_wall_s is envelope telemetry, not simulated state
            stats.sim_time_s = self._now
            stats.events_pending = self.pending_events()
        return self._now

    def pending_events(self) -> int:
        """Number of *live* events still queued (cancelled tokens excluded).

        An O(queue) scan — introspection only, never called on the hot
        path.  The event loop refreshes ``stats.events_pending`` from this
        after every :meth:`run`.
        """
        count = 0
        for entry in self._queue:
            token = entry[2]
            if token is None or not token.cancelled:
                count += 1
        return count
