"""Discrete-event simulation core.

The simulator is a classic calendar queue built on :mod:`heapq`.  Every
component (links, transports, Bundler control planes, workload generators)
schedules callbacks on a shared :class:`Simulator` instance.  Simulated time
is a float number of seconds.

Two scheduling idioms are supported:

* one-shot callbacks via :meth:`Simulator.schedule` / :meth:`Simulator.at`;
* recurring timers via :meth:`Simulator.every`, which is how the sendbox
  control plane gets invoked every 10 ms (§6.2) and how monitors sample
  queue state.

Events scheduled for the same instant fire in insertion order, which keeps
runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class CancelToken:
    """Handle returned by scheduling calls; allows cancelling a pending event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the associated callback from running."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, CancelToken, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        # Identifier allocators scoped to this simulation.  These used to be
        # module-level globals, which made node addresses, flow ids and ports
        # depend on how many simulations the process had already run — and,
        # since addresses and ports feed the epoch-boundary and SFQ hashes,
        # made nominally identical runs diverge.  Per-instance counters keep
        # a run a pure function of its configuration and seed.
        self._address_ids = itertools.count(1)
        self._flow_ids = itertools.count(1)
        self._port_ids = itertools.count(20_000)

    def next_address(self) -> int:
        """Allocate a node address unique within this simulation."""
        return next(self._address_ids)

    def next_flow_id(self) -> int:
        """Allocate a flow identifier unique within this simulation."""
        return next(self._flow_ids)

    def next_port(self) -> int:
        """Allocate a port number unique within this simulation."""
        return next(self._port_ids)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for profiling tests)."""
        return self._events_processed

    def at(self, time: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Scheduling in the past raises ``ValueError`` — such bugs otherwise
        silently reorder the event stream.
        """
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past (now={self._now:.9f}, requested={time:.9f})"
            )
        token = CancelToken()
        heapq.heappush(self._queue, (max(time, self._now), next(self._counter), token, callback))
        return token

    def schedule(self, delay: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, callback)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> CancelToken:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Parameters
        ----------
        interval:
            Seconds between invocations; must be positive.
        start:
            Absolute time of the first invocation (defaults to ``now + interval``).
        end:
            If given, no invocation is scheduled at or after this time.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        token = CancelToken()
        first = (self._now + interval) if start is None else start

        def tick(when: float) -> None:
            if token.cancelled:
                return
            if end is not None and when >= end:
                return
            callback()
            self.at(when + interval, lambda: tick(when + interval))

        self.at(first, lambda: tick(first))
        return token

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value (events at
            exactly ``until`` still run).  If ``None``, run until the event
            queue drains.
        max_events:
            Safety limit on the number of events to execute.

        Returns
        -------
        float
            The simulated time at which the run stopped.
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                time, _, token, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if token.cancelled:
                    continue
                self._now = time
                callback()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)
