"""Discrete-event simulation core.

The simulator is a classic calendar queue built on :mod:`heapq`.  Every
component (links, transports, Bundler control planes, workload generators)
schedules callbacks on a shared :class:`Simulator` instance.  Simulated time
is a float number of seconds.

Two scheduling idioms are supported:

* one-shot callbacks via :meth:`Simulator.schedule` / :meth:`Simulator.at`;
* recurring timers via :meth:`Simulator.every`, which is how the sendbox
  control plane gets invoked every 10 ms (§6.2) and how monitors sample
  queue state.

Events scheduled for the same instant fire in insertion order, which keeps
runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.collect import current_collector
from repro.obs.stats import SimStats


class CancelToken:
    """Handle returned by scheduling calls; allows cancelling a pending event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the associated callback from running."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, CancelToken, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        #: Hot-path counters (see :mod:`repro.obs.stats`): always present,
        #: incremented inline by the event loop.
        self.stats = SimStats()
        # Components register here so the observability layer can fold
        # their existing counters into a run snapshot *after* the run —
        # nothing is counted per packet on their behalf.
        self.observed_links: List[Any] = []
        self.observed_flows: List[Any] = []
        self.observed_bundles: List[Any] = []
        collector = current_collector()
        if collector is not None:
            collector.register_simulator(self)
        # Identifier allocators scoped to this simulation.  These used to be
        # module-level globals, which made node addresses, flow ids and ports
        # depend on how many simulations the process had already run — and,
        # since addresses and ports feed the epoch-boundary and SFQ hashes,
        # made nominally identical runs diverge.  Per-instance counters keep
        # a run a pure function of its configuration and seed.
        self._address_ids = itertools.count(1)
        self._flow_ids = itertools.count(1)
        self._port_ids = itertools.count(20_000)

    def next_address(self) -> int:
        """Allocate a node address unique within this simulation."""
        return next(self._address_ids)

    def next_flow_id(self) -> int:
        """Allocate a flow identifier unique within this simulation."""
        return next(self._flow_ids)

    def next_port(self) -> int:
        """Allocate a port number unique within this simulation."""
        return next(self._port_ids)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for profiling tests)."""
        return self.stats.events_processed

    # -- component registration (observability) ---------------------------

    def observe_link(self, link) -> None:
        """Register a link so its counters appear in run telemetry.

        The link's qdisc is *not* captured here: control planes swap a
        link's qdisc after construction (the sendbox installs its token
        bucket over the egress FIFO), so qdiscs are discovered from the
        registered links at snapshot time instead.
        """
        self.observed_links.append(link)

    def observe_flow(self, flow) -> None:
        """Register a transport endpoint (TCP sender, paced UDP stream)."""
        self.observed_flows.append(flow)

    def observe_bundle(self, sendbox) -> None:
        """Register a Bundler sendbox for epoch accounting."""
        self.observed_bundles.append(sendbox)

    def at(self, time: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Scheduling in the past raises ``ValueError`` — such bugs otherwise
        silently reorder the event stream.
        """
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past (now={self._now:.9f}, requested={time:.9f})"
            )
        token = CancelToken()
        self.stats.events_scheduled += 1
        heapq.heappush(self._queue, (max(time, self._now), next(self._counter), token, callback))
        return token

    def schedule(self, delay: float, callback: Callable[[], None]) -> CancelToken:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, callback)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> CancelToken:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Parameters
        ----------
        interval:
            Seconds between invocations; must be positive.
        start:
            Absolute time of the first invocation (defaults to ``now + interval``).
        end:
            If given, no invocation is scheduled at or after this time.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        token = CancelToken()
        first = (self._now + interval) if start is None else start

        def tick(when: float) -> None:
            if token.cancelled:
                return
            if end is not None and when >= end:
                return
            callback()
            self.at(when + interval, lambda: tick(when + interval))

        self.at(first, lambda: tick(first))
        return token

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value (events at
            exactly ``until`` still run).  If ``None``, run until the event
            queue drains.
        max_events:
            Safety limit on the number of events to execute.

        Returns
        -------
        float
            The simulated time at which the run stopped.
        """
        self._running = True
        executed = 0
        stats = self.stats
        started = perf_counter()
        try:
            while self._queue:
                time, _, token, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if token.cancelled:
                    stats.events_cancelled += 1
                    continue
                self._now = time
                callback()
                stats.events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            stats.run_calls += 1
            stats.run_wall_s += perf_counter() - started
            stats.sim_time_s = self._now
        return self._now

    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)
