"""Topology builders for the evaluation scenarios.

Every experiment in the paper runs on a variant of the same site-to-site
shape (Figure 1): traffic from many servers in site A crosses the site's
edge (where the sendbox sits), then an in-network bottleneck that neither
site controls, then enters site B's edge (where the receivebox observes it)
and reaches the clients.  The reverse path is uncongested.

:func:`build_site_to_site` constructs that shape with hooks for every
variation the evaluation needs: the number of parallel load-balanced WAN
paths (§5.2/§7.6), attachment points for un-bundled cross traffic (§7.3),
and pluggable qdiscs at the sendbox egress and at the bottleneck (so the
same topology expresses Status Quo, In-Network FQ, and Bundler runs).

:func:`build_competing_bundles` builds the two-site-A variant of Figure 13
and :func:`build_multi_region` the five-destination cloud deployment used to
emulate the real-Internet-paths study (§8 / Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.link import Link
from repro.net.node import Host, Router
from repro.net.packet import PacketFactory
from repro.net.simulator import Simulator
from repro.net.trace import QueueMonitor
from repro.qdisc.base import Qdisc
from repro.qdisc.fifo import FifoQdisc
from repro.util.units import mbps_to_bps, ms_to_s

#: Rate used for access/edge links that should never be the bottleneck.
FAST_LINK_MBPS = 10_000.0


def _fast_link(sim: Simulator, name: str, delay: float = 0.0) -> Link:
    return Link(
        sim,
        name,
        rate_bps=mbps_to_bps(FAST_LINK_MBPS),
        delay=delay,
        qdisc=FifoQdisc(limit_packets=100_000),
    )


@dataclass
class SiteToSite:
    """Handles to every interesting element of the site-to-site topology."""

    sim: Simulator
    packet_factory: PacketFactory
    servers: List[Host]
    clients: List[Host]
    site_a_edge: Router
    wan_router: Router
    site_b_edge: Router
    sendbox_link: Link
    bottleneck_links: List[Link]
    reverse_links: List[Link]
    cross_senders: List[Host] = field(default_factory=list)
    cross_receivers: List[Host] = field(default_factory=list)

    @property
    def bottleneck_link(self) -> Link:
        """The (single) bottleneck link; raises if the topology is multipath."""
        if len(self.bottleneck_links) != 1:
            raise ValueError("topology has multiple bottleneck paths; use bottleneck_links")
        return self.bottleneck_links[0]

    def all_hosts(self) -> List[Host]:
        return [*self.servers, *self.clients, *self.cross_senders, *self.cross_receivers]


def build_site_to_site(
    sim: Simulator,
    *,
    bottleneck_mbps: float = 96.0,
    rtt_ms: float = 50.0,
    num_servers: int = 8,
    num_clients: int = 1,
    num_cross_pairs: int = 0,
    sendbox_egress_mbps: Optional[float] = None,
    sendbox_qdisc: Optional[Qdisc] = None,
    bottleneck_qdisc_factory=None,
    num_paths: int = 1,
    path_delay_ms: Optional[Sequence[float]] = None,
    path_split_mode: str = "flow",
    bottleneck_buffer_packets: Optional[int] = None,
    monitor_queues: bool = True,
) -> SiteToSite:
    """Build the canonical site-to-site dumbbell.

    Parameters
    ----------
    bottleneck_mbps, rtt_ms:
        Rate of the in-network bottleneck and base round-trip time (the
        evaluation default is 96 Mbit/s × 50 ms).
    num_servers, num_clients:
        Hosts at site A (senders) and site B (receivers).
    num_cross_pairs:
        Sender/receiver pairs attached *beyond* the sendbox (at the WAN
        router), whose traffic shares the bottleneck but is not bundled.
    sendbox_egress_mbps:
        Raw capacity of the site-A edge's egress link.  Defaults to 10× the
        bottleneck so that the edge is only a bottleneck when the Bundler
        token bucket makes it one.
    sendbox_qdisc:
        Qdisc installed on the site-A egress link (Bundler installs a
        :class:`~repro.qdisc.tbf.TokenBucketQdisc` here; Status Quo leaves a
        plain FIFO).
    bottleneck_qdisc_factory:
        Callable returning a qdisc for each bottleneck path (defaults to
        drop-tail FIFO; the In-Network baseline passes an SFQ factory).
    num_paths, path_delay_ms, path_split_mode:
        Number of parallel load-balanced WAN paths, their one-way delays in
        milliseconds (default: all equal to ``rtt_ms / 2``), and whether the
        WAN router splits traffic per-flow or per-packet.
    bottleneck_buffer_packets:
        Buffer size of each bottleneck queue.  Defaults to roughly one
        bandwidth-delay product plus headroom.
    """
    if num_paths < 1:
        raise ValueError("num_paths must be at least 1")
    if path_delay_ms is not None and len(path_delay_ms) != num_paths:
        raise ValueError("path_delay_ms must have one entry per path")

    factory = PacketFactory()
    one_way = ms_to_s(rtt_ms) / 2.0
    bottleneck_bps = mbps_to_bps(bottleneck_mbps)
    egress_mbps = sendbox_egress_mbps if sendbox_egress_mbps is not None else bottleneck_mbps * 10.0

    if bottleneck_buffer_packets is None:
        bdp_pkts = bottleneck_bps * ms_to_s(rtt_ms) / 8.0 / 1500.0
        bottleneck_buffer_packets = max(int(2.0 * bdp_pkts), 64)

    site_a_edge = Router(sim, "site_a_edge")
    wan_router = Router(sim, "wan_router")
    site_b_edge = Router(sim, "site_b_edge")

    servers = [Host(sim, f"server{i}") for i in range(num_servers)]
    clients = [Host(sim, f"client{i}") for i in range(num_clients)]

    # -- Site A access links (servers <-> edge) ---------------------------
    server_downlinks: Dict[int, Link] = {}
    for server in servers:
        up = _fast_link(sim, f"{server.name}->site_a_edge").connect(site_a_edge)
        down = _fast_link(sim, f"site_a_edge->{server.name}").connect(server)
        server.attach_egress(up)
        server_downlinks[server.address] = down
        site_a_edge.add_route(server.address, down)

    # -- Site A egress (where the sendbox datapath lives) ------------------
    sendbox_link = Link(
        sim,
        "site_a_edge->wan",
        rate_bps=mbps_to_bps(egress_mbps),
        delay=0.0,
        qdisc=sendbox_qdisc if sendbox_qdisc is not None else FifoQdisc(limit_packets=100_000),
        monitor=QueueMonitor(enabled=monitor_queues),
    ).connect(wan_router)

    # -- WAN bottleneck path(s) --------------------------------------------
    if bottleneck_qdisc_factory is None:
        bottleneck_qdisc_factory = lambda: FifoQdisc(limit_packets=bottleneck_buffer_packets)
    delays_ms = list(path_delay_ms) if path_delay_ms is not None else [rtt_ms / 2.0] * num_paths
    bottleneck_links: List[Link] = []
    per_path_rate = bottleneck_bps / num_paths
    for i in range(num_paths):
        link = Link(
            sim,
            f"wan->site_b_edge[path{i}]",
            rate_bps=per_path_rate,
            delay=ms_to_s(delays_ms[i]),
            qdisc=bottleneck_qdisc_factory(),
            monitor=QueueMonitor(enabled=monitor_queues),
        ).connect(site_b_edge)
        bottleneck_links.append(link)

    # -- Site B access links (edge <-> clients) -----------------------------
    for client in clients:
        down = _fast_link(sim, f"site_b_edge->{client.name}").connect(client)
        up = _fast_link(sim, f"{client.name}->site_b_edge").connect(site_b_edge)
        client.attach_egress(up)
        site_b_edge.add_route(client.address, down)

    # -- Reverse (uncongested) path: site B edge -> WAN -> site A edge ------
    reverse_b_to_wan = _fast_link(sim, "site_b_edge->wan[rev]", delay=one_way).connect(wan_router)
    reverse_wan_to_a = _fast_link(sim, "wan->site_a_edge[rev]", delay=0.0).connect(site_a_edge)
    reverse_links = [reverse_b_to_wan, reverse_wan_to_a]

    # -- Cross-traffic attachment (beyond the sendbox) -----------------------
    cross_senders: List[Host] = []
    cross_receivers: List[Host] = []
    for i in range(num_cross_pairs):
        sender = Host(sim, f"cross_sender{i}")
        receiver = Host(sim, f"cross_receiver{i}")
        sender_up = _fast_link(sim, f"{sender.name}->wan").connect(wan_router)
        sender_down = _fast_link(sim, f"wan->{sender.name}").connect(sender)
        sender.attach_egress(sender_up)
        receiver_down = _fast_link(sim, f"site_b_edge->{receiver.name}").connect(receiver)
        receiver_up = _fast_link(sim, f"{receiver.name}->site_b_edge").connect(site_b_edge)
        receiver.attach_egress(receiver_up)
        wan_router.add_route(sender.address, sender_down)
        site_b_edge.add_route(receiver.address, receiver_down)
        cross_senders.append(sender)
        cross_receivers.append(receiver)

    # -- Routing -------------------------------------------------------------
    forward_dsts = [c.address for c in clients] + [r.address for r in cross_receivers]
    forward_dsts.append(site_b_edge.address)
    for dst in [c.address for c in clients] + [site_b_edge.address]:
        site_a_edge.add_route(dst, sendbox_link)
    for dst in forward_dsts:
        if num_paths == 1:
            wan_router.add_route(dst, bottleneck_links[0])
        else:
            wan_router.add_ecmp_route(dst, bottleneck_links, mode=path_split_mode)

    reverse_dsts = (
        [s.address for s in servers]
        + [s.address for s in cross_senders]
        + [site_a_edge.address]
    )
    for dst in reverse_dsts:
        site_b_edge.add_route(dst, reverse_b_to_wan)
    for dst in [s.address for s in servers] + [site_a_edge.address]:
        wan_router.add_route(dst, reverse_wan_to_a)

    return SiteToSite(
        sim=sim,
        packet_factory=factory,
        servers=servers,
        clients=clients,
        site_a_edge=site_a_edge,
        wan_router=wan_router,
        site_b_edge=site_b_edge,
        sendbox_link=sendbox_link,
        bottleneck_links=bottleneck_links,
        reverse_links=reverse_links,
        cross_senders=cross_senders,
        cross_receivers=cross_receivers,
    )


@dataclass
class CompetingBundlesTopology:
    """Two site-A networks whose bundles share one in-network bottleneck."""

    sim: Simulator
    packet_factory: PacketFactory
    bundles: List[SiteToSite]
    shared_bottleneck: Link
    wan_router: Router


def build_competing_bundles(
    sim: Simulator,
    *,
    bottleneck_mbps: float = 96.0,
    rtt_ms: float = 50.0,
    servers_per_bundle: Sequence[int] = (8, 8),
    sendbox_qdiscs: Optional[Sequence[Optional[Qdisc]]] = None,
    bottleneck_buffer_packets: Optional[int] = None,
    monitor_queues: bool = True,
) -> CompetingBundlesTopology:
    """Build the Figure 13 scenario: multiple bundles sharing a bottleneck.

    Each bundle has its own site-A edge (sendbox attachment point) and its
    own site-B edge/clients, but every bundle's traffic crosses the same
    bottleneck link between the shared WAN routers.
    """
    num_bundles = len(servers_per_bundle)
    if num_bundles < 1:
        raise ValueError("need at least one bundle")
    if sendbox_qdiscs is None:
        sendbox_qdiscs = [None] * num_bundles
    if len(sendbox_qdiscs) != num_bundles:
        raise ValueError("sendbox_qdiscs must have one entry per bundle")

    factory = PacketFactory()
    one_way = ms_to_s(rtt_ms) / 2.0
    bottleneck_bps = mbps_to_bps(bottleneck_mbps)
    if bottleneck_buffer_packets is None:
        bdp_pkts = bottleneck_bps * ms_to_s(rtt_ms) / 8.0 / 1500.0
        bottleneck_buffer_packets = max(int(2.0 * bdp_pkts), 64)

    wan_in = Router(sim, "wan_in")
    wan_out = Router(sim, "wan_out")
    shared_bottleneck = Link(
        sim,
        "wan_in->wan_out[bottleneck]",
        rate_bps=bottleneck_bps,
        delay=one_way,
        qdisc=FifoQdisc(limit_packets=bottleneck_buffer_packets),
        monitor=QueueMonitor(enabled=monitor_queues),
    ).connect(wan_out)

    bundles: List[SiteToSite] = []
    reverse_out_to_in = _fast_link(sim, "wan_out->wan_in[rev]", delay=one_way).connect(wan_in)

    for b in range(num_bundles):
        site_a_edge = Router(sim, f"bundle{b}_site_a_edge")
        site_b_edge = Router(sim, f"bundle{b}_site_b_edge")
        servers = [Host(sim, f"bundle{b}_server{i}") for i in range(servers_per_bundle[b])]
        clients = [Host(sim, f"bundle{b}_client0")]

        for server in servers:
            up = _fast_link(sim, f"{server.name}->edge").connect(site_a_edge)
            down = _fast_link(sim, f"edge->{server.name}").connect(server)
            server.attach_egress(up)
            site_a_edge.add_route(server.address, down)

        sendbox_qdisc = sendbox_qdiscs[b]
        sendbox_link = Link(
            sim,
            f"bundle{b}_edge->wan",
            rate_bps=mbps_to_bps(bottleneck_mbps * 10.0),
            delay=0.0,
            qdisc=sendbox_qdisc if sendbox_qdisc is not None else FifoQdisc(limit_packets=100_000),
            monitor=QueueMonitor(enabled=monitor_queues),
        ).connect(wan_in)

        client = clients[0]
        down = _fast_link(sim, f"edge->{client.name}").connect(client)
        up = _fast_link(sim, f"{client.name}->edge").connect(site_b_edge)
        client.attach_egress(up)
        site_b_edge.add_route(client.address, down)

        out_to_b = _fast_link(sim, f"wan_out->bundle{b}_site_b_edge").connect(site_b_edge)
        b_to_out = _fast_link(sim, f"bundle{b}_site_b_edge->wan_out[rev]").connect(wan_out)
        rev_in_to_a = _fast_link(sim, f"wan_in->bundle{b}_site_a_edge[rev]").connect(site_a_edge)

        # Forward routes.
        for dst in [client.address, site_b_edge.address]:
            site_a_edge.add_route(dst, sendbox_link)
            wan_in.add_route(dst, shared_bottleneck)
            wan_out.add_route(dst, out_to_b)
        # Reverse routes.
        for dst in [s.address for s in servers] + [site_a_edge.address]:
            site_b_edge.add_route(dst, b_to_out)
            wan_out.add_route(dst, reverse_out_to_in)
            wan_in.add_route(dst, rev_in_to_a)

        bundles.append(
            SiteToSite(
                sim=sim,
                packet_factory=factory,
                servers=servers,
                clients=clients,
                site_a_edge=site_a_edge,
                wan_router=wan_in,
                site_b_edge=site_b_edge,
                sendbox_link=sendbox_link,
                bottleneck_links=[shared_bottleneck],
                reverse_links=[b_to_out, reverse_out_to_in, rev_in_to_a],
            )
        )

    return CompetingBundlesTopology(
        sim=sim,
        packet_factory=factory,
        bundles=bundles,
        shared_bottleneck=shared_bottleneck,
        wan_router=wan_in,
    )


@dataclass
class MultiRegionTopology:
    """One sending site with bundles to several receiving regions (Figure 16)."""

    sim: Simulator
    packet_factory: PacketFactory
    regions: List[SiteToSite]
    cloud_egress: Router


def build_multi_region(
    sim: Simulator,
    *,
    regions_rtt_ms: Sequence[float] = (30.0, 100.0, 110.0, 25.0, 150.0),
    egress_limit_mbps: float = 48.0,
    servers_per_region: int = 4,
    sendbox_qdiscs: Optional[Sequence[Optional[Qdisc]]] = None,
    monitor_queues: bool = True,
) -> MultiRegionTopology:
    """Emulate the §8 deployment: one cloud site sending to several regions.

    Each region gets its own bundle whose bottleneck is a per-region
    rate-limited path (standing in for the cloud provider's egress rate
    limiter, the suspected bottleneck in the paper's real-world study), with
    a region-specific base RTT.
    """
    if sendbox_qdiscs is None:
        sendbox_qdiscs = [None] * len(regions_rtt_ms)
    if len(sendbox_qdiscs) != len(regions_rtt_ms):
        raise ValueError("sendbox_qdiscs must have one entry per region")

    factory = PacketFactory()
    cloud_egress = Router(sim, "cloud_egress")
    regions: List[SiteToSite] = []
    for idx, rtt_ms in enumerate(regions_rtt_ms):
        region = build_site_to_site(
            sim,
            bottleneck_mbps=egress_limit_mbps,
            rtt_ms=rtt_ms,
            num_servers=servers_per_region,
            num_clients=1,
            sendbox_qdisc=sendbox_qdiscs[idx],
            monitor_queues=monitor_queues,
        )
        regions.append(region)
    return MultiRegionTopology(
        sim=sim, packet_factory=factory, regions=regions, cloud_egress=cloud_egress
    )
