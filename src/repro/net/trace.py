"""Measurement and tracing helpers.

The evaluation needs three kinds of ground truth from the network:

* per-queue delay over time (Figure 2, Figure 7, Figure 10);
* per-link throughput over time (Figure 10, Figure 12);
* distributions of scalar samples (estimate-vs-actual differences in
  Figures 5 and 6, RTT distributions in Figure 16).

:class:`TimeSeries` is a plain container of (time, value) samples with
summary helpers; :class:`QueueMonitor` and :class:`RateMonitor` attach to a
:class:`~repro.net.link.Link` and populate time series as packets move.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """Append-only series of (time, value) samples."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def add(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values, strict=True))

    def between(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` (times are assumed sorted)."""
        out = TimeSeries()
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def mean(self) -> Optional[float]:
        if not self.values:
            return None
        return sum(self.values) / len(self.values)

    def max(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def min(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """Most recent value at or before ``time`` (step interpolation)."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return None
        return self.values[idx]

    def resample(self, interval: float, start: float = 0.0, end: Optional[float] = None) -> "TimeSeries":
        """Step-resample onto a regular grid (useful for comparing series)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        out = TimeSeries()
        if not self.times:
            return out
        stop = end if end is not None else self.times[-1]
        t = start
        while t <= stop + 1e-12:
            v = self.value_at(t)
            if v is not None:
                out.add(t, v)
            t += interval
        return out


class QueueMonitor:
    """Records queueing delay and backlog at a link's queue.

    The queueing delay of a packet is measured when it begins transmission:
    ``dequeue_time - enqueue_time``.  Backlog is sampled (in bytes) whenever
    it changes.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.delay = TimeSeries()
        self.backlog = TimeSeries()
        self.drops = 0
        self.enqueues = 0
        self.dequeues = 0

    def on_enqueue(self, now: float, backlog_bytes: int) -> None:
        self.enqueues += 1
        if self.enabled:
            self.backlog.add(now, backlog_bytes)

    def on_dequeue(self, now: float, wait: float, backlog_bytes: int) -> None:
        self.dequeues += 1
        if self.enabled:
            self.delay.add(now, wait)
            self.backlog.add(now, backlog_bytes)

    def on_drop(self, now: float) -> None:
        self.drops += 1

    def mean_delay(self) -> Optional[float]:
        return self.delay.mean()

    def max_delay(self) -> Optional[float]:
        return self.delay.max()


class RateMonitor:
    """Bins delivered bytes into fixed intervals to produce a throughput series."""

    def __init__(self, bin_width: float = 0.1) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: List[float] = []
        self.total_bytes = 0
        self.total_packets = 0

    def on_delivery(self, now: float, size_bytes: int) -> None:
        idx = int(now / self.bin_width)
        while len(self._bins) <= idx:
            self._bins.append(0.0)
        self._bins[idx] += size_bytes
        self.total_bytes += size_bytes
        self.total_packets += 1

    def series_bps(self) -> TimeSeries:
        """Throughput (bits/second) per bin, timestamped at the bin start."""
        out = TimeSeries()
        for i, byte_count in enumerate(self._bins):
            out.add(i * self.bin_width, byte_count * 8.0 / self.bin_width)
        return out

    def mean_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean throughput between ``start`` and ``end`` (bin-aligned)."""
        series = self.series_bps()
        if end is None:
            end = (len(self._bins)) * self.bin_width
        window = series.between(start, end)
        return window.mean() or 0.0


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank style percentile with linear interpolation.

    ``pct`` is in [0, 100].  Raises ``ValueError`` on an empty sequence so
    that silent NaNs never enter experiment results.
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def cdf(samples: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points as (value, cumulative_probability)."""
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
