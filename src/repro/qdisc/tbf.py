"""Token-bucket filter with a pluggable inner qdisc.

This mirrors the patched Linux ``tbf`` qdisc the Bundler prototype uses as
its sendbox datapath (§6.1):

* the *rate* of the bucket is the bundle's sending rate computed by the
  control plane (it can be updated at runtime via :meth:`set_rate`);
* the *inner qdisc* decides which queued packet goes out next, which is
  where the operator's scheduling policy (SFQ, FQ-CoDel, strict priority, …)
  plugs in;
* as in the prototype's patch, updating the rate does **not** instantly
  refill the bucket, so frequent rate updates do not cause bursts;
* an optional callback reports each packet as it is released, which the
  sendbox uses to record epoch-boundary transmit timestamps.

The shaper exposes :meth:`next_ready_time` so the owning link can re-poll
when enough tokens will have accumulated for the head packet.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc
from repro.qdisc.fifo import FifoQdisc


class TokenBucketQdisc(Qdisc):
    """Rate limiter (token bucket) feeding from an inner scheduling qdisc."""

    def __init__(
        self,
        rate_bps: float,
        inner: Optional[Qdisc] = None,
        *,
        burst_bytes: Optional[int] = None,
        peak_rate_bps: Optional[float] = None,
    ) -> None:
        # NOTE: the base-class __init__ is deliberately not called.  The token
        # bucket does not keep its own backlog counters — the backlog lives in
        # the inner qdisc (which may drop already-queued packets when it
        # overflows, e.g. SFQ's drop-from-longest-queue), so the TBF exposes
        # the inner backlog via properties instead of shadow counters that
        # could drift out of sync.
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.limit_packets = None
        self.limit_bytes = None
        self.dropped_packets = 0
        self.enqueued_packets = 0
        self.dequeued_packets = 0
        self.inner = inner if inner is not None else FifoQdisc()
        self.rate_bps = rate_bps
        # Default burst of two MTU-sized packets: enough to avoid quantization
        # stalls without allowing multi-packet bursts that would defeat pacing.
        self.burst_bytes = burst_bytes if burst_bytes is not None else 3028
        if self.burst_bytes < 1514:
            raise ValueError("burst must be at least one MTU (1514 bytes)")
        self.peak_rate_bps = peak_rate_bps
        self._tokens = float(self.burst_bytes)
        self._last_update = 0.0
        self._staged: Optional[Packet] = None
        self.rate_updates = 0

    # -- backlog (delegated to the inner qdisc plus the staged packet) -------

    @property
    def backlog_packets(self) -> int:
        return self.inner.backlog_packets + (1 if self._staged is not None else 0)

    @property
    def backlog_bytes(self) -> int:
        return self.inner.backlog_bytes + (self._staged.size if self._staged is not None else 0)

    # -- rate control ------------------------------------------------------

    def set_rate(self, rate_bps: float, now: Optional[float] = None) -> None:
        """Update the shaping rate.

        The token count is brought up to date at the *old* rate first and is
        not refilled, reproducing the prototype's "disable instantaneous
        bucket refill" patch so frequent control-plane updates cannot create
        rate spikes.
        """
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if now is not None:
            self._refill(now)
        self.rate_bps = rate_bps
        self.rate_updates += 1

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed < 0:
            elapsed = 0.0
        self._tokens = min(
            float(self.burst_bytes), self._tokens + elapsed * self.rate_bps / 8.0
        )
        self._last_update = now

    # -- qdisc interface ----------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        accepted = self.inner.enqueue(packet, now)
        if accepted:
            self.enqueued_packets += 1
        else:
            self.dropped_packets += 1
        return accepted

    def dequeue(self, now: float) -> Optional[Packet]:
        self._refill(now)
        if self._staged is None:
            self._staged = self.inner.dequeue(now)
        if self._staged is None:
            return None
        if self._tokens + 1e-9 < self._staged.size:
            return None
        packet = self._staged
        self._staged = None
        self._tokens -= packet.size
        self.dequeued_packets += 1
        return packet

    def next_ready_time(self, now: float) -> Optional[float]:
        if self.backlog_packets <= 0:
            return None
        self._refill(now)
        pending_size = self._staged.size if self._staged is not None else 1514
        deficit = pending_size - self._tokens
        if deficit <= 0:
            return now
        return now + deficit * 8.0 / self.rate_bps

    def __len__(self) -> int:
        return self.backlog_packets

    def peek(self) -> Optional[Packet]:
        """The staged packet, or the inner head.  Eligibility (token state)
        is *not* checked — pair with :meth:`next_ready_time`."""
        if self._staged is not None:
            return self._staged
        return self.inner.peek()

    # -- introspection -------------------------------------------------------

    @property
    def tokens(self) -> float:
        """Current token count in bytes (for tests and diagnostics)."""
        return self._tokens

    def queue_delay_estimate(self, now: float) -> float:
        """Approximate delay a packet arriving now would experience, in seconds.

        This is the backlog divided by the shaping rate — the quantity the
        pass-through PI controller (§5.1) regulates toward its 10 ms target.
        """
        return self.backlog_bytes * 8.0 / self.rate_bps
