"""Strict priority scheduling.

Packets are classified into priority bands by their ``traffic_class`` field
(band 0 is the highest priority).  The scheduler always serves the
lowest-numbered non-empty band, so high-priority traffic sees the queue of
lower-priority traffic only while a single lower-priority packet finishes
transmitting.

§7.2 uses this policy to show that Bundler can strictly prioritize one
traffic class over another, cutting the favored class's median FCT by 65%.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class PrioQdisc(Qdisc):
    """Strict-priority bands with drop-tail per band."""

    DEFAULT_LIMIT_PACKETS = 4000

    def __init__(
        self,
        bands: int = 3,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
        classifier: Optional[Callable[[Packet], int]] = None,
    ) -> None:
        if bands <= 0:
            raise ValueError("bands must be positive")
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self.bands = bands
        self.classifier = classifier or (lambda pkt: pkt.traffic_class)
        self._queues: List[Deque[Packet]] = [deque() for _ in range(bands)]

    def _band_for(self, packet: Packet) -> int:
        band = self.classifier(packet)
        return min(max(int(band), 0), self.bands - 1)

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._would_exceed_limit(packet):
            # Under overload, protect high-priority traffic: drop from the
            # lowest-priority non-empty band rather than the arrival, unless
            # the arrival itself is lowest priority.
            band = self._band_for(packet)
            victim_band = self._lowest_priority_nonempty()
            if victim_band is None or victim_band < band:
                self._account_drop(packet)
                return False
            victim = self._queues[victim_band].pop()
            self._account_drop(victim, was_queued=True)
        self._queues[self._band_for(packet)].append(packet)
        self._account_enqueue(packet)
        return True

    def _lowest_priority_nonempty(self) -> Optional[int]:
        for band in range(self.bands - 1, -1, -1):
            if self._queues[band]:
                return band
        return None

    def dequeue(self, now: float) -> Optional[Packet]:
        for queue in self._queues:
            if queue:
                packet = queue.popleft()
                self._account_dequeue(packet)
                return packet
        return None

    def peek(self) -> Optional[Packet]:
        for queue in self._queues:
            if queue:
                return queue[0]
        return None

    def band_backlog(self, band: int) -> int:
        """Packets queued in ``band``."""
        return len(self._queues[band])
