"""Drop-tail FIFO.

This is the Status Quo bottleneck queue in the evaluation: packets are
served in arrival order, and arrivals that would exceed the configured limit
are dropped at the tail.  It is also what "Bundler with FIFO" uses as the
sendbox scheduling policy in Figure 9.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class FifoQdisc(Qdisc):
    """First-in first-out, drop-tail queue."""

    #: Default queue limit, in packets.  1000 packets mirrors the default
    #: Linux ``pfifo`` txqueuelen and is deep enough to hold several
    #: bandwidth-delay products at the scaled-down link rates we simulate.
    DEFAULT_LIMIT_PACKETS = 1000

    def __init__(
        self,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
    ) -> None:
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self._queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> bool:
        # FIFO sits on nearly every link, so the base-class accounting
        # helpers are inlined here (same bookkeeping, no method calls).
        if (
            self.limit_packets is not None
            and self.backlog_packets + 1 > self.limit_packets
        ) or (
            self.limit_bytes is not None
            and self.backlog_bytes + packet.size > self.limit_bytes
        ):
            self.dropped_packets += 1
            return False
        self._queue.append(packet)
        self.backlog_packets += 1
        self.backlog_bytes += packet.size
        self.enqueued_packets += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.backlog_packets -= 1
        self.backlog_bytes -= packet.size
        self.dequeued_packets += 1
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None
