"""Qdisc interface.

Every queueing discipline exposes the same small interface to the link:

* :meth:`Qdisc.enqueue` — accept or drop a packet.
* :meth:`Qdisc.dequeue` — release the next packet, or ``None`` if nothing is
  eligible *right now* (a shaper may hold a backlog but have no tokens).
* :meth:`Qdisc.next_ready_time` — when a waiting packet could next become
  eligible (only meaningful for shapers; work-conserving qdiscs return the
  current time whenever they have a backlog).
* :meth:`Qdisc.peek` — the head-of-line candidate, without mutating any
  state (see the method docstring for what "candidate" means for AQMs and
  schedulers whose dequeue is stateful).
* ``len(qdisc)`` and :attr:`Qdisc.backlog_bytes` — queue occupancy.
  ``backlog_bytes``/``backlog_packets`` are plain integer attributes kept
  by the bookkeeping helpers below, so reading them is always O(1) — links
  and monitors read them per packet.

Limits may be expressed in packets (``limit_packets``) or bytes
(``limit_bytes``); both default to "unlimited", and concrete disciplines
choose sensible defaults mirroring their Linux counterparts.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet


class Qdisc:
    """Base class for queueing disciplines."""

    def __init__(
        self,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
    ) -> None:
        if limit_packets is not None and limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_packets = limit_packets
        self.limit_bytes = limit_bytes
        self.backlog_bytes = 0
        self.backlog_packets = 0
        self.dropped_packets = 0
        self.enqueued_packets = 0
        self.dequeued_packets = 0

    # -- interface --------------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Accept ``packet`` or drop it.  Returns True if accepted."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Release the next eligible packet, or ``None``."""
        raise NotImplementedError

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a held packet may become eligible.

        Work-conserving qdiscs return ``now`` when they have a backlog and
        ``None`` when empty.  Shapers override this.
        """
        return now if self.backlog_packets > 0 else None

    def peek(self) -> Optional[Packet]:
        """Return the head-of-line candidate without dequeuing it.

        Must not mutate any state.  For plain queues this is exactly the
        packet the next :meth:`dequeue` returns.  For disciplines whose
        dequeue is stateful the contract is deliberately weaker — the
        *candidate* at the head of the currently scheduled queue:

        * AQMs (CoDel, RED) may still drop the candidate at dequeue time;
        * DRR/FQ-CoDel may rotate to another class once deficits are
          charged;
        * a shaper (TBF) reports its staged/inner head even when no tokens
          are available yet (pair with :meth:`next_ready_time`).

        Returns ``None`` when empty.
        """
        raise NotImplementedError

    def peek_backlog(self) -> int:
        """Bytes currently queued (alias for :attr:`backlog_bytes`)."""
        return self.backlog_bytes

    def walk(self):
        """Yield this discipline and every wrapped inner one, outermost first.

        Shapers nest (the sendbox's token bucket wraps the scheduling
        policy), and control planes install them after link construction —
        so telemetry and probes walk the chain at read time rather than
        caching it.  Reading each level's ``backlog_bytes`` stays O(1).
        """
        qdisc = self
        while qdisc is not None:
            yield qdisc
            qdisc = getattr(qdisc, "inner", None)

    def __len__(self) -> int:
        return self.backlog_packets

    # -- bookkeeping helpers for subclasses --------------------------------

    def _would_exceed_limit(self, packet: Packet) -> bool:
        if self.limit_packets is not None and self.backlog_packets + 1 > self.limit_packets:
            return True
        if self.limit_bytes is not None and self.backlog_bytes + packet.size > self.limit_bytes:
            return True
        return False

    def _account_enqueue(self, packet: Packet) -> None:
        self.backlog_packets += 1
        self.backlog_bytes += packet.size
        self.enqueued_packets += 1

    def _account_dequeue(self, packet: Packet) -> None:
        self.backlog_packets -= 1
        self.backlog_bytes -= packet.size
        self.dequeued_packets += 1

    def _account_drop(self, packet: Packet, *, was_queued: bool = False) -> None:
        self.dropped_packets += 1
        if was_queued:
            self.backlog_packets -= 1
            self.backlog_bytes -= packet.size
