"""Deficit Round Robin (DRR) scheduling [Shreedhar & Varghese 1995].

DRR serves per-flow queues in round-robin order, letting each queue send up
to its accumulated byte deficit per round.  Unlike SFQ's one-packet-per-turn
round robin, DRR is byte-fair even with heterogeneous packet sizes, and it
supports per-class weights, which makes it a useful sendbox policy when an
operator wants weighted bandwidth shares between traffic classes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class _DrrClass:
    """Per-class state: one ring buffer plus its byte deficit."""

    __slots__ = ("queue", "deficit")

    def __init__(self) -> None:
        self.queue: Deque[Packet] = deque()
        self.deficit = 0.0


class DrrQdisc(Qdisc):
    """Weighted deficit-round-robin over per-flow (or per-class) queues."""

    DEFAULT_LIMIT_PACKETS = 4000

    def __init__(
        self,
        quantum: int = 1514,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
        classifier: Optional[Callable[[Packet], int]] = None,
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self.quantum = quantum
        self.classifier = classifier or (lambda pkt: pkt.flow_hash() % 1024)
        self.weights = weights or {}
        self._classes: Dict[int, _DrrClass] = {}
        self._active: Deque[int] = deque()

    def _class_quantum(self, key: int) -> float:
        return self.quantum * self.weights.get(key, 1.0)

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._would_exceed_limit(packet):
            self._account_drop(packet)
            return False
        key = self.classifier(packet)
        cls = self._classes.get(key)
        if cls is None:
            cls = self._classes[key] = _DrrClass()
        if not cls.queue and key not in self._active:
            self._active.append(key)
            cls.deficit = 0.0
        cls.queue.append(packet)
        self._account_enqueue(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        rounds = 0
        while self._active and rounds <= 2 * len(self._active) + 2:
            key = self._active[0]
            cls = self._classes[key]
            queue = cls.queue
            if not queue:
                self._active.popleft()
                continue
            head = queue[0]
            if cls.deficit < head.size:
                # Not enough deficit: grant a quantum and rotate to the back.
                cls.deficit += self._class_quantum(key)
                self._active.rotate(-1)
                rounds += 1
                continue
            queue.popleft()
            cls.deficit -= head.size
            self._account_dequeue(head)
            if not queue:
                self._active.popleft()
            return head
        # Degenerate case: a packet larger than any accumulated deficit with a
        # tiny quantum.  Serve the head of the first active queue to preserve
        # work conservation.
        while self._active:
            key = self._active[0]
            queue = self._classes[key].queue
            if not queue:
                self._active.popleft()
                continue
            head = queue.popleft()
            self._account_dequeue(head)
            if not queue:
                self._active.popleft()
            return head
        return None

    def peek(self) -> Optional[Packet]:
        """Head of the first active class; deficit rotation at dequeue time
        may serve a different class first."""
        for key in self._active:
            queue = self._classes[key].queue
            if queue:
                return queue[0]
        return None

    def active_classes(self) -> int:
        """Number of classes with queued packets."""
        return sum(1 for cls in self._classes.values() if cls.queue)
