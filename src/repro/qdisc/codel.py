"""CoDel — Controlled Delay AQM [Nichols & Jacobson 2012].

CoDel tracks the *sojourn time* of each packet through the queue.  When the
sojourn time has exceeded ``target`` for at least one ``interval``, CoDel
enters a dropping state and drops head packets at increasing frequency
(``interval / sqrt(count)``) until the sojourn time falls back below the
target.

Used standalone as an AQM, and as the per-flow queue inside FQ-CoDel (§7.2
reports Bundler+FQ-CoDel reducing median end-to-end RTTs by 97%).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class CoDelState:
    """The CoDel dropping-state machine, reusable by FQ-CoDel sub-queues."""

    def __init__(self, target: float = 0.005, interval: float = 0.1) -> None:
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.lastcount = 0
        self.dropping = False

    def control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(max(self.count, 1))

    def should_drop(self, sojourn: float, now: float, backlog_bytes: int) -> bool:
        """One step of the CoDel decision for the packet at the head."""
        if sojourn < self.target or backlog_bytes <= 1500:
            self.first_above_time = 0.0
            if self.dropping:
                self.dropping = False
            return False
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval
            return False
        if not self.dropping:
            if now >= self.first_above_time:
                self.dropping = True
                # Resume drop frequency close to where we left off if the
                # previous dropping state was recent (standard CoDel hysteresis).
                delta = self.count - self.lastcount
                self.count = delta if (delta > 1 and now - self.drop_next < 16 * self.interval) else 1
                self.lastcount = self.count
                self.drop_next = self.control_law(now)
                return True
            return False
        if now >= self.drop_next:
            self.count += 1
            self.drop_next = self.control_law(now)
            return True
        return False


class CoDelQdisc(Qdisc):
    """Single-queue CoDel."""

    DEFAULT_LIMIT_PACKETS = 1000

    def __init__(
        self,
        target: float = 0.005,
        interval: float = 0.1,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
    ) -> None:
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self._queue: Deque[Packet] = deque()
        self.state = CoDelState(target=target, interval=interval)

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._would_exceed_limit(packet):
            self._account_drop(packet)
            return False
        packet.codel_ts = now
        self._queue.append(packet)
        self._account_enqueue(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._queue:
            packet = self._queue.popleft()
            # codel_ts is a dedicated Packet slot (set at enqueue above) so
            # the sojourn read never allocates a meta dict per packet.
            sojourn = now - packet.codel_ts
            if self.state.should_drop(sojourn, now, self.backlog_bytes):
                self._account_drop(packet, was_queued=True)
                continue
            self._account_dequeue(packet)
            return packet
        return None

    def peek(self) -> Optional[Packet]:
        """Head of the queue; the CoDel drop law may still claim it at dequeue."""
        return self._queue[0] if self._queue else None
