"""Stochastic Fairness Queueing (SFQ).

SFQ [McKenney 1990] hashes each flow into one of a fixed number of buckets
and serves the non-empty buckets round-robin, one packet at a time.  This is
the default sendbox scheduling policy in the paper's evaluation (§7.1): when
Bundler shifts the bottleneck queue to the sendbox, SFQ prevents short flows
from waiting behind long ones, which is where the 28–97% median-FCT
improvements come from.

As in the Linux implementation, flows that hash to the same bucket share its
fate; with the default 1024 buckets collisions are rare at the flow counts
used in the evaluation.  Optionally the hash can be "perturbed" periodically
to break long-lived collisions; the perturbation interval is in seconds of
simulated time.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class SfqQdisc(Qdisc):
    """Hash-bucketed round-robin fair queueing."""

    DEFAULT_LIMIT_PACKETS = 4000

    def __init__(
        self,
        buckets: int = 1024,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
        perturb_interval: Optional[float] = None,
    ) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self.buckets = buckets
        self.perturb_interval = perturb_interval
        self._perturbation = 0
        self._last_perturb = 0.0
        # Active buckets in round-robin order: bucket_id -> deque of packets.
        self._active: "OrderedDict[int, Deque[Packet]]" = OrderedDict()

    def _bucket_for(self, packet: Packet, now: float) -> int:
        if self.perturb_interval is not None and now - self._last_perturb >= self.perturb_interval:
            self._perturbation += 1
            self._last_perturb = now
        return (packet.flow_hash() ^ (self._perturbation * 0x9E3779B9)) % self.buckets

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.limit_bytes is not None and packet.size > self.limit_bytes:
            # The arrival can never fit, even into an empty queue; draining
            # every bucket for it would punish the well-behaved flows.
            self._account_drop(packet)
            return False
        # Linux SFQ drops from the longest per-flow queue on overflow and
        # then accepts the arrival, so one heavy flow cannot squeeze out
        # light ones.  With a byte limit one victim may not be enough for a
        # large arrival, so keep evicting until the arrival fits; the loop is
        # bounded by the number of queued packets.
        while self._would_exceed_limit(packet):
            victim_bucket = self._longest_bucket()
            if victim_bucket is None:
                self._account_drop(packet)
                return False
            victim_queue = self._active[victim_bucket]
            victim = victim_queue.pop()
            self._account_drop(victim, was_queued=True)
            if not victim_queue:
                del self._active[victim_bucket]
        bucket = self._bucket_for(packet, now)
        if bucket not in self._active:
            self._active[bucket] = deque()
        self._active[bucket].append(packet)
        self._account_enqueue(packet)
        return True

    def _longest_bucket(self) -> Optional[int]:
        longest = None
        longest_len = 0
        for bucket, queue in self._active.items():
            if len(queue) > longest_len:
                longest = bucket
                longest_len = len(queue)
        return longest

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._active:
            return None
        bucket, queue = next(iter(self._active.items()))
        packet = queue.popleft()
        # Rotate: move this bucket to the tail (or remove it if now empty).
        del self._active[bucket]
        if queue:
            self._active[bucket] = queue
        self._account_dequeue(packet)
        return packet

    def peek(self) -> Optional[Packet]:
        if not self._active:
            return None
        return next(iter(self._active.values()))[0]

    def active_flows(self) -> int:
        """Number of buckets with queued packets."""
        return len(self._active)
