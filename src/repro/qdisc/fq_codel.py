"""FQ-CoDel — fair queueing with CoDel per-flow AQM.

FQ-CoDel hashes flows into buckets, serves them with a deficit round-robin
scheduler that favors "new" flows (flows that just became active get a quick
first service), and runs the CoDel drop law independently on every bucket.
The paper reports that Bundler configured with FQ-CoDel at the sendbox cuts
median end-to-end RTTs by 97% and 99th-percentile RTTs by 89% (§7.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc
from repro.qdisc.codel import CoDelState


class _FlowQueue:
    __slots__ = ("queue", "deficit", "codel")

    def __init__(self, quantum: int, target: float, interval: float) -> None:
        self.queue: Deque[Packet] = deque()
        self.deficit = quantum
        self.codel = CoDelState(target=target, interval=interval)


class FqCoDelQdisc(Qdisc):
    """Flow-queueing CoDel, modelled on the Linux ``fq_codel`` qdisc."""

    DEFAULT_LIMIT_PACKETS = 10240

    def __init__(
        self,
        buckets: int = 1024,
        quantum: int = 1514,
        target: float = 0.005,
        interval: float = 0.1,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
    ) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self.buckets = buckets
        self.quantum = quantum
        self.target = target
        self.interval = interval
        self._flows: Dict[int, _FlowQueue] = {}
        self._new_flows: Deque[int] = deque()
        self._old_flows: Deque[int] = deque()

    def _bucket_for(self, packet: Packet) -> int:
        return packet.flow_hash() % self.buckets

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._would_exceed_limit(packet):
            dropped = self._drop_from_longest()
            if dropped is None:
                self._account_drop(packet)
                return False
        bucket = self._bucket_for(packet)
        flow = self._flows.get(bucket)
        if flow is None:
            flow = _FlowQueue(self.quantum, self.target, self.interval)
            self._flows[bucket] = flow
        packet.codel_ts = now
        was_empty = not flow.queue
        flow.queue.append(packet)
        self._account_enqueue(packet)
        if was_empty and bucket not in self._new_flows and bucket not in self._old_flows:
            flow.deficit = self.quantum
            self._new_flows.append(bucket)
        return True

    def _drop_from_longest(self) -> Optional[Packet]:
        longest_bucket = None
        longest_len = 0
        for bucket, flow in self._flows.items():
            if len(flow.queue) > longest_len:
                longest_bucket = bucket
                longest_len = len(flow.queue)
        if longest_bucket is None:
            return None
        victim = self._flows[longest_bucket].queue.pop()
        self._account_drop(victim, was_queued=True)
        return victim

    def _next_active_bucket(self) -> Optional[int]:
        if self._new_flows:
            return self._new_flows[0]
        if self._old_flows:
            return self._old_flows[0]
        return None

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            use_new = bool(self._new_flows)
            active = self._new_flows if use_new else self._old_flows
            if not active:
                return None
            bucket = active[0]
            flow = self._flows[bucket]
            if not flow.queue:
                # Empty flow rotates out; new flows that drained move to old
                # status so a later burst does not get priority forever.
                active.popleft()
                continue
            if flow.deficit <= 0:
                flow.deficit += self.quantum
                active.popleft()
                self._old_flows.append(bucket)
                continue
            packet = flow.queue.popleft()
            sojourn = now - packet.codel_ts
            if flow.codel.should_drop(sojourn, now, self.backlog_bytes):
                self._account_drop(packet, was_queued=True)
                continue
            flow.deficit -= packet.size
            self._account_dequeue(packet)
            if not flow.queue:
                active.popleft()
                if use_new:
                    self._old_flows.append(bucket)
            return packet

    def peek(self) -> Optional[Packet]:
        """Head of the first scheduled flow; deficit rotation and the CoDel
        drop law may still pick differently at dequeue time."""
        for active in (self._new_flows, self._old_flows):
            for bucket in active:
                queue = self._flows[bucket].queue
                if queue:
                    return queue[0]
        return None

    def active_flows(self) -> int:
        """Number of flow buckets currently holding packets."""
        return sum(1 for flow in self._flows.values() if flow.queue)
