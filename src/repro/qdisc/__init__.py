"""Queueing disciplines.

These are packet-level re-implementations of the Linux qdiscs the paper's
prototype relies on, driven by simulated time instead of the kernel clock:

* :class:`~repro.qdisc.fifo.FifoQdisc` — drop-tail FIFO (the Status Quo
  bottleneck queue).
* :class:`~repro.qdisc.sfq.SfqQdisc` — Stochastic Fairness Queueing, the
  default scheduling policy at the sendbox (§7.1).
* :class:`~repro.qdisc.codel.CoDelQdisc` and
  :class:`~repro.qdisc.fq_codel.FqCoDelQdisc` — CoDel AQM and FQ-CoDel.
* :class:`~repro.qdisc.drr.DrrQdisc` — deficit round robin.
* :class:`~repro.qdisc.prio.PrioQdisc` — strict priority classes.
* :class:`~repro.qdisc.red.RedQdisc` — Random Early Detection.
* :class:`~repro.qdisc.tbf.TokenBucketQdisc` — token-bucket shaper with a
  pluggable inner qdisc; the patched-TBF sendbox datapath of §6.1.
"""

from repro.qdisc.base import Qdisc
from repro.qdisc.fifo import FifoQdisc
from repro.qdisc.sfq import SfqQdisc
from repro.qdisc.codel import CoDelQdisc
from repro.qdisc.fq_codel import FqCoDelQdisc
from repro.qdisc.drr import DrrQdisc
from repro.qdisc.prio import PrioQdisc
from repro.qdisc.red import RedQdisc
from repro.qdisc.tbf import TokenBucketQdisc

__all__ = [
    "Qdisc",
    "FifoQdisc",
    "SfqQdisc",
    "CoDelQdisc",
    "FqCoDelQdisc",
    "DrrQdisc",
    "PrioQdisc",
    "RedQdisc",
    "TokenBucketQdisc",
]


QDISC_REGISTRY = {
    "fifo": FifoQdisc,
    "sfq": SfqQdisc,
    "codel": CoDelQdisc,
    "fq_codel": FqCoDelQdisc,
    "drr": DrrQdisc,
    "prio": PrioQdisc,
    "red": RedQdisc,
}


def make_qdisc(name: str, **kwargs) -> Qdisc:
    """Construct a qdisc by name (e.g. from experiment configuration)."""
    try:
        cls = QDISC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown qdisc {name!r}; available: {sorted(QDISC_REGISTRY)}"
        ) from None
    return cls(**kwargs)
