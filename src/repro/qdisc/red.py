"""Random Early Detection (RED) [Floyd & Jacobson 1993].

RED drops arriving packets with a probability that rises linearly with the
exponentially-weighted average queue size between a minimum and maximum
threshold.  It is included as an additional in-network AQM baseline for
experiments that compare what an operator could do *if* they controlled the
bottleneck router (the "In-Network" family of configurations).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.qdisc.base import Qdisc


class RedQdisc(Qdisc):
    """Byte-mode RED with EWMA average queue tracking."""

    DEFAULT_LIMIT_PACKETS = 1000

    def __init__(
        self,
        min_threshold_bytes: int = 30000,
        max_threshold_bytes: int = 90000,
        max_drop_probability: float = 0.1,
        ewma_weight: float = 0.002,
        limit_packets: Optional[int] = None,
        limit_bytes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if min_threshold_bytes <= 0 or max_threshold_bytes <= min_threshold_bytes:
            raise ValueError("thresholds must satisfy 0 < min < max")
        if not 0.0 < max_drop_probability <= 1.0:
            raise ValueError("max_drop_probability must be in (0, 1]")
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError("ewma_weight must be in (0, 1]")
        if limit_packets is None and limit_bytes is None:
            limit_packets = self.DEFAULT_LIMIT_PACKETS
        super().__init__(limit_packets=limit_packets, limit_bytes=limit_bytes)
        self.min_threshold_bytes = min_threshold_bytes
        self.max_threshold_bytes = max_threshold_bytes
        self.max_drop_probability = max_drop_probability
        self.ewma_weight = ewma_weight
        self._avg_queue = 0.0
        self._queue: Deque[Packet] = deque()
        self._rng = random.Random(seed)
        self.early_drops = 0

    def _update_average(self) -> None:
        self._avg_queue = (
            (1.0 - self.ewma_weight) * self._avg_queue + self.ewma_weight * self.backlog_bytes
        )

    def _drop_probability(self) -> float:
        if self._avg_queue <= self.min_threshold_bytes:
            return 0.0
        if self._avg_queue >= self.max_threshold_bytes:
            return 1.0
        span = self.max_threshold_bytes - self.min_threshold_bytes
        return self.max_drop_probability * (self._avg_queue - self.min_threshold_bytes) / span

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._update_average()
        if self._would_exceed_limit(packet):
            self._account_drop(packet)
            return False
        if self._rng.random() < self._drop_probability():
            self.early_drops += 1
            self._account_drop(packet)
            return False
        self._queue.append(packet)
        self._account_enqueue(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._account_dequeue(packet)
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    @property
    def average_queue_bytes(self) -> float:
        """Current EWMA of the queue size in bytes."""
        return self._avg_queue
