"""TCP Cubic congestion control (endhost) [Ha, Rhee, Xu 2008].

Cubic is the default endhost congestion controller in the evaluation
(§7.1).  Its defining property for Bundler is that it is *loss-based*: it
keeps probing for bandwidth until packets are dropped, so the packets it
pushes beyond the bottleneck capacity must queue somewhere — at the
bottleneck without Bundler, at the sendbox with it (§7.2).

The implementation follows the standard formulation: after a loss the
window is reduced by ``beta`` and subsequently grows as
``W(t) = C (t - K)^3 + W_max`` with ``K = cbrt(W_max * (1 - beta) / C)``,
with the TCP-friendly (Reno-tracking) lower bound.
"""

from __future__ import annotations

from repro.cc.base import WindowCongestionControl


class CubicCC(WindowCongestionControl):
    """CUBIC window growth with fast convergence."""

    def __init__(
        self,
        mss: int = 1500,
        c: float = 0.4,
        beta: float = 0.7,
        initial_cwnd_segments: int = 10,
        fast_convergence: bool = True,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        self.mss = mss
        self.c = c
        self.beta = beta
        self.fast_convergence = fast_convergence
        self._cwnd = float(initial_cwnd_segments * mss)
        self._ssthresh = float("inf")
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: float = -1.0
        self._tcp_cwnd = 0.0
        self.in_recovery_until = 0.0

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def ssthresh_bytes(self) -> float:
        return self._ssthresh

    def _cwnd_segments(self) -> float:
        return self._cwnd / self.mss

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if acked_bytes <= 0:
            return
        if self._cwnd < self._ssthresh:
            # Slow start with appropriate byte counting (cap per ACK).
            self._cwnd += min(acked_bytes, 2 * self.mss)
            return
        # Congestion avoidance in CUBIC's time domain.
        if self._epoch_start < 0:
            self._epoch_start = now
            w_max_seg = max(self._w_max, self._cwnd) / self.mss
            cwnd_seg = self._cwnd_segments()
            if w_max_seg > cwnd_seg:
                self._k = ((w_max_seg - cwnd_seg) / self.c) ** (1.0 / 3.0)
            else:
                self._k = 0.0
            self._tcp_cwnd = self._cwnd
        t = now - self._epoch_start
        target_seg = self.c * (t - self._k) ** 3 + self._w_max / self.mss
        target = max(target_seg * self.mss, self.mss)
        # TCP-friendly region: never be slower than an equivalent Reno flow.
        self._tcp_cwnd += (
            3.0 * (1.0 - self.beta) / (1.0 + self.beta)
            * self.mss * (acked_bytes / max(self._cwnd, self.mss))
            * self.mss
        ) / self.mss
        target = max(target, self._tcp_cwnd)
        if target > self._cwnd:
            # Approach the cubic target over roughly one RTT of ACKs.
            self._cwnd += (target - self._cwnd) * (acked_bytes / max(self._cwnd, self.mss))
        else:
            self._cwnd += self.mss * 0.01 * (acked_bytes / max(self._cwnd, self.mss))
        self._cwnd = max(self._cwnd, float(self.mss))

    def on_loss(self, now: float) -> None:
        if now < self.in_recovery_until:
            return
        if self.fast_convergence and self._cwnd < self._w_max:
            self._w_max = self._cwnd * (1.0 + self.beta) / 2.0
        else:
            self._w_max = self._cwnd
        self._cwnd = max(self._cwnd * self.beta, 2.0 * self.mss)
        self._ssthresh = self._cwnd
        self._epoch_start = -1.0
        self.in_recovery_until = now + 0.1

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        reference = max(self._cwnd, flight_bytes)
        self._w_max = reference
        self._ssthresh = max(reference * self.beta, 2.0 * self.mss)
        self._cwnd = float(self.mss)
        self._epoch_start = -1.0
        self.in_recovery_until = now
