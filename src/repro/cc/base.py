"""Congestion control interfaces.

Endhost transports use :class:`WindowCongestionControl`: the classic
ACK-clocked interface (congestion window in bytes, loss and timeout events).

The Bundler sendbox uses :class:`RateCongestionControl`: once per control
interval it receives a :class:`BundleMeasurement` — the congestion signals
the measurement module computed from epoch feedback (§4.5) — and returns the
bundle's sending rate in bits per second.  This mirrors how the prototype's
CCP-based control plane feeds Copa/Nimbus/BBR with (RTT, send rate, receive
rate) once per 10 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class BundleMeasurement:
    """Congestion signals for one bundle over the last measurement window.

    Attributes
    ----------
    now:
        Simulated time the measurement was taken.
    rtt:
        Smoothed RTT between sendbox and receivebox (seconds), computed from
        epoch feedback over a sliding window of roughly one RTT.
    min_rtt:
        Minimum RTT observed for the bundle so far (seconds).
    send_rate:
        Rate at which the sendbox released the bundle's bytes (bits/second).
    recv_rate:
        Rate at which the receivebox observed the bundle's bytes
        (bits/second).
    acked_bytes:
        Bytes newly acknowledged by congestion ACKs since the previous
        measurement.
    loss_detected:
        True if epoch feedback indicated missing epochs (boundary packets
        that were never acknowledged within a timeout).
    """

    now: float
    rtt: float
    min_rtt: float
    send_rate: float
    recv_rate: float
    acked_bytes: float = 0.0
    loss_detected: bool = False

    @property
    def queue_delay(self) -> float:
        """Estimated self-inflicted queueing delay in the network (seconds)."""
        return max(0.0, self.rtt - self.min_rtt)


class WindowCongestionControl:
    """Interface for endhost (per-connection) congestion control."""

    #: Maximum segment size used for window arithmetic, in bytes.
    mss: int = 1500

    @property
    def cwnd_bytes(self) -> float:
        """Current congestion window in bytes."""
        raise NotImplementedError

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        """New data was cumulatively acknowledged."""
        raise NotImplementedError

    def on_loss(self, now: float) -> None:
        """Loss inferred from SACK/duplicate-ACK evidence (fast retransmit)."""
        raise NotImplementedError

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        """Retransmission timeout fired.

        ``flight_bytes`` is the amount of unacknowledged data at the time of
        the timeout; implementations should base their ssthresh on it (RFC
        5681 uses the flight size, not the possibly-already-collapsed cwnd).
        """
        raise NotImplementedError

    def pacing_rate_bps(self) -> Optional[float]:
        """Optional pacing rate; ``None`` means pure window (ACK-clocked) sending."""
        return None


class RateCongestionControl:
    """Interface for the bundle-level (sendbox) congestion control."""

    def initial_rate_bps(self) -> float:
        """Rate to use before the first measurement arrives."""
        raise NotImplementedError

    def on_measurement(self, measurement: BundleMeasurement) -> float:
        """Consume one measurement and return the new sending rate (bits/second)."""
        raise NotImplementedError

    def on_no_feedback(self, now: float) -> Optional[float]:
        """Called when a control interval elapses with no new feedback.

        Returning a rate overrides the previous one (e.g. to back off after
        persistent silence); returning ``None`` keeps the current rate.
        """
        return None
