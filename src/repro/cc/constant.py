"""Constant-window and constant-rate controllers.

* :class:`ConstantWindowCC` pins the congestion window regardless of
  feedback.  §7.5 emulates an *idealized TCP proxy* by configuring the
  endhosts with a constant window of 450 packets (slightly above the
  bandwidth-delay product) so their traffic ramps instantly, with the
  sendbox absorbing the excess — this class is that emulation.
* :class:`ConstantRateControl` pins the bundle rate; it is the "Bundler
  disabled"/status-quo rate controller and a useful fixture in tests.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import BundleMeasurement, RateCongestionControl, WindowCongestionControl


class ConstantWindowCC(WindowCongestionControl):
    """A congestion window that never changes (idealized-proxy endhost)."""

    def __init__(self, mss: int = 1500, window_segments: int = 450) -> None:
        if mss <= 0 or window_segments <= 0:
            raise ValueError("mss and window_segments must be positive")
        self.mss = mss
        self._cwnd = float(window_segments * mss)

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        return None

    def on_loss(self, now: float) -> None:
        return None

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        return None


class ConstantRateControl(RateCongestionControl):
    """A bundle rate controller that always returns the same rate."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps

    def initial_rate_bps(self) -> float:
        return self.rate_bps

    def on_measurement(self, measurement: BundleMeasurement) -> float:
        return self.rate_bps

    def on_no_feedback(self, now: float) -> Optional[float]:
        return None
