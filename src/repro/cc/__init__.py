"""Congestion control algorithms.

Two interfaces live here (defined in :mod:`repro.cc.base`):

* **Window controllers** drive endhost TCP flows (Cubic, Reno, BBR, Vegas,
  and the constant-window controller used to emulate an idealized TCP
  proxy).  Bundler leaves these untouched — they keep probing for bandwidth
  exactly as they would without a Bundler on path (§4.1).
* **Rate controllers** drive the bundle's inner control loop at the sendbox
  (Copa, Nimbus BasicDelay, rate-mode BBR), fed by the epoch-based
  measurements of §4.5 once per 10 ms control interval.

:mod:`repro.cc.nimbus` implements the Nimbus elasticity detector (§5.1):
pulsed sending rates, cross-traffic rate estimation, and an FFT-based test
for buffer-filling cross traffic, plus the watchdog that decides when
Bundler should let traffic pass.
"""

from repro.cc.base import (
    BundleMeasurement,
    RateCongestionControl,
    WindowCongestionControl,
)
from repro.cc.reno import RenoCC
from repro.cc.cubic import CubicCC
from repro.cc.vegas import VegasCC
from repro.cc.bbr import BbrRateControl, BbrWindowCC
from repro.cc.copa import CopaRateControl
from repro.cc.basic_delay import BasicDelayRateControl
from repro.cc.nimbus import NimbusDetector, NimbusPulser
from repro.cc.constant import ConstantWindowCC, ConstantRateControl

WINDOW_CC_REGISTRY = {
    "reno": RenoCC,
    "cubic": CubicCC,
    "vegas": VegasCC,
    "bbr": BbrWindowCC,
    "constant": ConstantWindowCC,
}

RATE_CC_REGISTRY = {
    "copa": CopaRateControl,
    "basic_delay": BasicDelayRateControl,
    "bbr": BbrRateControl,
    "constant": ConstantRateControl,
}


def make_window_cc(name: str, **kwargs) -> WindowCongestionControl:
    """Construct an endhost (window-based) congestion controller by name."""
    try:
        cls = WINDOW_CC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown window congestion controller {name!r}; available: {sorted(WINDOW_CC_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def make_rate_cc(name: str, **kwargs) -> RateCongestionControl:
    """Construct a sendbox (rate-based) congestion controller by name."""
    try:
        cls = RATE_CC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rate congestion controller {name!r}; available: {sorted(RATE_CC_REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BundleMeasurement",
    "RateCongestionControl",
    "WindowCongestionControl",
    "RenoCC",
    "CubicCC",
    "VegasCC",
    "BbrRateControl",
    "BbrWindowCC",
    "CopaRateControl",
    "BasicDelayRateControl",
    "NimbusDetector",
    "NimbusPulser",
    "ConstantWindowCC",
    "ConstantRateControl",
    "make_window_cc",
    "make_rate_cc",
    "WINDOW_CC_REGISTRY",
    "RATE_CC_REGISTRY",
]
