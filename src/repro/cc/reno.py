"""TCP NewReno congestion control (endhost).

The classic AIMD loop: slow start doubles the window every RTT until it
crosses ``ssthresh``; congestion avoidance then adds one segment per RTT;
duplicate-ACK loss halves the window; a retransmission timeout collapses it
to one segment.  §7.4 uses Reno endhosts to show Bundler's benefits are not
specific to Cubic.
"""

from __future__ import annotations

from repro.cc.base import WindowCongestionControl


class RenoCC(WindowCongestionControl):
    """NewReno-style AIMD window control."""

    def __init__(
        self,
        mss: int = 1500,
        initial_cwnd_segments: int = 10,
        initial_ssthresh_segments: int = 10_000,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self._cwnd = float(initial_cwnd_segments * mss)
        self._ssthresh = float(initial_ssthresh_segments * mss)
        self.in_recovery_until = 0.0

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def ssthresh_bytes(self) -> float:
        return self._ssthresh

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if acked_bytes <= 0:
            return
        if self._cwnd < self._ssthresh:
            # Slow start with appropriate byte counting (RFC 3465): growth per
            # ACK is capped so a large cumulative ACK after loss recovery
            # cannot inflate the window in one step.
            self._cwnd += min(acked_bytes, 2 * self.mss)
        else:
            # Congestion avoidance: ~1 MSS per RTT of acknowledged data.
            self._cwnd += self.mss * self.mss / self._cwnd * (acked_bytes / self.mss)
        self._cwnd = max(self._cwnd, float(self.mss))

    def on_loss(self, now: float) -> None:
        # One window reduction per round trip: ignore further losses that
        # arrive while we are still recovering from the previous one.
        if now < self.in_recovery_until:
            return
        self._ssthresh = max(self._cwnd / 2.0, 2.0 * self.mss)
        self._cwnd = self._ssthresh
        self.in_recovery_until = now + 0.1

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        reference = max(self._cwnd, flight_bytes)
        self._ssthresh = max(reference / 2.0, 2.0 * self.mss)
        self._cwnd = float(self.mss)
        self.in_recovery_until = now
