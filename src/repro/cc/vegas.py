"""TCP Vegas congestion control (endhost).

Vegas is the canonical delay-based endhost controller [Brakmo et al. 1994];
the paper cites it as the class of algorithm that "competes poorly with
buffer-filling loss-based schemes" (§4.3), which is exactly the problem
Bundler's Nimbus-based cross-traffic detection exists to solve.  It is
included both for completeness and to let tests demonstrate the
delay-vs-loss competition effect directly.
"""

from __future__ import annotations

from repro.cc.base import WindowCongestionControl


class VegasCC(WindowCongestionControl):
    """Vegas: keep between ``alpha`` and ``beta`` packets queued in the network."""

    def __init__(
        self,
        mss: int = 1500,
        alpha: float = 2.0,
        beta: float = 4.0,
        initial_cwnd_segments: int = 10,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        if alpha <= 0 or beta <= alpha:
            raise ValueError("need 0 < alpha < beta")
        self.mss = mss
        self.alpha = alpha
        self.beta = beta
        self._cwnd = float(initial_cwnd_segments * mss)
        self._ssthresh = float("inf")
        self._base_rtt = float("inf")
        self._last_adjust = 0.0

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def base_rtt(self) -> float:
        return self._base_rtt

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if acked_bytes <= 0 or rtt <= 0:
            return
        self._base_rtt = min(self._base_rtt, rtt)
        if self._cwnd < self._ssthresh:
            # Vegas slow start is half-rate; cap growth per ACK as elsewhere.
            self._cwnd += min(acked_bytes / 2.0, float(self.mss))
        # Adjust once per RTT.
        if now - self._last_adjust < rtt:
            return
        self._last_adjust = now
        expected = self._cwnd / self._base_rtt
        actual = self._cwnd / rtt
        diff_packets = (expected - actual) * self._base_rtt / self.mss
        if diff_packets < self.alpha:
            self._cwnd += self.mss
        elif diff_packets > self.beta:
            self._cwnd -= self.mss
        self._cwnd = max(self._cwnd, 2.0 * self.mss)

    def on_loss(self, now: float) -> None:
        self._cwnd = max(self._cwnd * 0.75, 2.0 * self.mss)
        self._ssthresh = self._cwnd

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        reference = max(self._cwnd, flight_bytes)
        self._ssthresh = max(reference / 2.0, 2.0 * self.mss)
        self._cwnd = float(2 * self.mss)
