"""Nimbus elasticity detection (§5.1).

Bundler's delay-based inner loop would lose throughput to buffer-filling
cross traffic, so it uses the Nimbus mechanism [Goyal et al.] to detect such
traffic and temporarily stop controlling queues:

* :class:`NimbusPulser` superimposes the asymmetric sinusoidal pulse on the
  base sending rate: a half-sine *up* pulse of amplitude ``A`` over the first
  quarter of each period, balanced by a shallower half-sine *down* pulse of
  amplitude ``A/3`` over the remaining three quarters (zero net volume).
  The paper uses period ``T = 0.2 s`` and amplitude ``A = mu / 4``.
* :class:`NimbusDetector` estimates the cross-traffic rate
  ``z = mu * S / R - S`` from the bundle's send rate ``S``, receive rate
  ``R`` and bottleneck estimate ``mu``, keeps a short history, and looks at
  the magnitude of the FFT of ``z`` at the pulse frequency.  Elastic
  (buffer-filling) cross traffic reacts to the pulses within an RTT, so its
  rate shows significant energy at the pulse frequency; inelastic traffic
  (short flows, paced streams) does not.

The detector only reports *elastic* when cross traffic is actually present
(mean ``z`` above a small fraction of ``mu``) and the pulse-frequency energy
stands out from neighbouring frequencies, which avoids false positives when
the bundle has the bottleneck to itself.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.util.windowed import MaxFilter


class NimbusPulser:
    """Asymmetric sinusoidal rate pulses (zero mean over each period)."""

    def __init__(self, period_s: float = 0.2, amplitude_fraction: float = 0.25) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < amplitude_fraction <= 0.5:
            raise ValueError("amplitude_fraction must be in (0, 0.5]")
        self.period_s = period_s
        self.amplitude_fraction = amplitude_fraction

    @property
    def pulse_frequency_hz(self) -> float:
        return 1.0 / self.period_s

    def offset(self, now: float, mu_bps: float) -> float:
        """Rate offset (bits/second) to add to the base rate at time ``now``."""
        if mu_bps <= 0:
            return 0.0
        amplitude = self.amplitude_fraction * mu_bps
        phase = (now % self.period_s) / self.period_s
        if phase < 0.25:
            return amplitude * math.sin(math.pi * (phase / 0.25))
        return -(amplitude / 3.0) * math.sin(math.pi * ((phase - 0.25) / 0.75))

    def up_pulse_queue_bytes(self, mu_bps: float) -> float:
        """Queueing (bytes) needed at the sendbox to source a full up-pulse.

        This is the area under the up-pulse curve, ``A * T / (2 * pi)`` in
        the paper's notation (§5.1), which motivates the 10 ms standing-queue
        target in pass-through mode.
        """
        amplitude = self.amplitude_fraction * mu_bps
        return amplitude * self.period_s / (2.0 * math.pi) / 8.0


class NimbusDetector:
    """FFT-based detector for elastic (buffer-filling) cross traffic."""

    def __init__(
        self,
        pulser: Optional[NimbusPulser] = None,
        *,
        sample_interval_s: float = 0.01,
        history_s: float = 5.0,
        detection_interval_s: float = 0.5,
        elasticity_threshold: float = 2.5,
        min_cross_fraction: float = 0.1,
        min_queue_delay_s: float = 0.003,
        bw_window_s: float = 10.0,
        hysteresis_intervals: int = 3,
    ) -> None:
        self.pulser = pulser or NimbusPulser()
        self.sample_interval_s = sample_interval_s
        self.history_s = history_s
        self.detection_interval_s = detection_interval_s
        self.elasticity_threshold = elasticity_threshold
        self.min_cross_fraction = min_cross_fraction
        self.min_queue_delay_s = min_queue_delay_s
        self.hysteresis_intervals = hysteresis_intervals
        self._mu_hat = MaxFilter(bw_window_s)
        maxlen = max(int(history_s / sample_interval_s), 16)
        self._cross_samples: Deque[float] = deque(maxlen=maxlen)
        self._last_detection_time = 0.0
        self._elastic = False
        self._elastic_votes = 0
        self._inelastic_votes = 0
        self.last_elasticity_metric = 0.0
        self.last_cross_rate_bps = 0.0

    # -- inputs -------------------------------------------------------------

    def record_sample(
        self,
        now: float,
        send_rate_bps: float,
        recv_rate_bps: float,
        queue_delay_s: float = math.inf,
    ) -> None:
        """Record one control-interval sample of the bundle's send/receive rates.

        ``queue_delay_s`` is the measured self-inflicted queueing delay on the
        path.  The cross-traffic estimate ``mu * S / R - S`` is only meaningful
        when the bottleneck is actually busy (a queue exists); when the path is
        uncongested, ``R`` simply tracks ``S`` and the estimate would mirror our
        own pulses, so such samples are recorded as "no cross traffic".
        """
        if recv_rate_bps > 0:
            self._mu_hat.update(now, recv_rate_bps)
        mu = self._mu_hat.current(now)
        if mu is None or mu <= 0 or recv_rate_bps <= 0:
            return
        if queue_delay_s < self.min_queue_delay_s:
            cross = 0.0
        else:
            cross = max(0.0, mu * send_rate_bps / recv_rate_bps - send_rate_bps)
        self.last_cross_rate_bps = cross
        self._cross_samples.append(cross)
        if now - self._last_detection_time >= self.detection_interval_s:
            self._last_detection_time = now
            self._run_detection()

    @property
    def mu_hat_bps(self) -> Optional[float]:
        """Current bottleneck-bandwidth estimate."""
        return self._mu_hat.current()

    # -- detection ------------------------------------------------------------

    def _spectrum(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if len(self._cross_samples) < int(1.0 / self.sample_interval_s):
            return None
        samples = np.asarray(self._cross_samples, dtype=float)
        samples = samples - samples.mean()
        spectrum = np.abs(np.fft.rfft(samples))
        freqs = np.fft.rfftfreq(len(samples), d=self.sample_interval_s)
        return freqs, spectrum

    def elasticity_metric(self) -> float:
        """Ratio of cross-traffic energy at the pulse frequency to nearby frequencies."""
        result = self._spectrum()
        if result is None:
            return 0.0
        freqs, spectrum = result
        f_pulse = self.pulser.pulse_frequency_hz
        pulse_band = (freqs >= f_pulse * 0.8) & (freqs <= f_pulse * 1.2)
        # Reference band: frequencies away from the pulse and its first
        # harmonic, in the same general range so broadband noise cancels out.
        reference_band = (
            (freqs >= f_pulse * 1.4)
            & (freqs <= f_pulse * 3.0)
            & ~((freqs >= f_pulse * 1.8) & (freqs <= f_pulse * 2.2))
        )
        if not pulse_band.any() or not reference_band.any():
            return 0.0
        pulse_energy = float(spectrum[pulse_band].max())
        reference_energy = float(spectrum[reference_band].mean()) + 1e-9
        return pulse_energy / reference_energy

    def _run_detection(self) -> None:
        mu = self._mu_hat.current()
        if mu is None or mu <= 0:
            return
        metric = self.elasticity_metric()
        self.last_elasticity_metric = metric
        mean_cross = (
            sum(self._cross_samples) / len(self._cross_samples) if self._cross_samples else 0.0
        )
        cross_present = mean_cross >= self.min_cross_fraction * mu
        is_elastic_now = cross_present and metric >= self.elasticity_threshold
        if is_elastic_now:
            self._elastic_votes += 1
            self._inelastic_votes = 0
        else:
            self._inelastic_votes += 1
            self._elastic_votes = 0
        # Hysteresis: require several consecutive agreeing detections before
        # switching modes, so one noisy FFT window does not flap the bundle
        # between delay-control and pass-through.
        if not self._elastic and self._elastic_votes >= self.hysteresis_intervals:
            self._elastic = True
        elif self._elastic and self._inelastic_votes >= self.hysteresis_intervals:
            self._elastic = False

    @property
    def elastic_cross_traffic(self) -> bool:
        """True while buffer-filling (elastic) cross traffic is believed present."""
        return self._elastic

    def reset(self) -> None:
        """Clear detector state (used when the bundle is idle for a long time)."""
        self._cross_samples.clear()
        self._elastic = False
        self._elastic_votes = 0
        self._inelastic_votes = 0
        self.last_elasticity_metric = 0.0
