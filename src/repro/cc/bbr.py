"""BBR congestion control, in window (endhost) and rate (sendbox) forms.

BBR [Cardwell et al. 2016] models the path with two quantities — the
bottleneck bandwidth (max delivery rate over a sliding window) and the
round-trip propagation delay (min RTT) — and paces at ``gain × btl_bw``,
cycling the gain to probe for more bandwidth and to drain the queue it
created while probing.

Two adapters share that logic:

* :class:`BbrWindowCC` drives an endhost TCP flow (cwnd = cwnd_gain × BDP).
* :class:`BbrRateControl` drives the bundle at the sendbox.  Figure 14 shows
  this choice performing slightly *worse* than Status Quo, because BBR's
  probing pushes packets into the network more aggressively than Copa or
  BasicDelay and therefore leaves a larger in-network queue.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import BundleMeasurement, RateCongestionControl, WindowCongestionControl
from repro.util.windowed import MaxFilter, MinFilter

#: Pacing-gain cycle used in PROBE_BW (standard BBR values).
PROBE_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
STARTUP_GAIN = 2.885


class _BbrModel:
    """Shared BBR path model: windowed max bandwidth and min RTT, plus phases.

    The phase machine follows the BBR v1 structure: STARTUP until the
    bandwidth estimate plateaus, a one-RTT DRAIN, then PROBE_BW gain cycling,
    periodically interrupted by a short PROBE_RTT during which the sender
    shrinks its window so the standing queue drains and the minimum RTT can
    be re-measured (without PROBE_RTT the min-RTT filter would slowly absorb
    the self-inflicted queueing delay and the window would run away).
    """

    PROBE_RTT_INTERVAL = 10.0
    PROBE_RTT_DURATION = 0.2

    def __init__(self, bw_window_s: float = 2.0, rtt_window_s: float = 10.0) -> None:
        self.btl_bw = MaxFilter(bw_window_s)
        self.min_rtt = MinFilter(rtt_window_s)
        self.phase = "startup"
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._probe_rtt_start = 0.0
        self._last_probe_rtt_end = 0.0

    def update(self, now: float, delivery_rate_bps: float, rtt: float) -> None:
        if delivery_rate_bps > 0:
            self.btl_bw.update(now, delivery_rate_bps)
        if rtt > 0:
            self.min_rtt.update(now, rtt)
        self._advance_phase(now)

    def _advance_phase(self, now: float) -> None:
        bw = self.btl_bw.current(now) or 0.0
        if self.phase == "probe_rtt":
            if now - self._probe_rtt_start >= self.PROBE_RTT_DURATION:
                self._last_probe_rtt_end = now
                self.phase = "probe_bw"
                self._cycle_index = 0
                self._cycle_start = now
            return
        if self.phase not in ("startup", "drain") and (
            now - self._last_probe_rtt_end >= self.PROBE_RTT_INTERVAL
        ):
            self.phase = "probe_rtt"
            self._probe_rtt_start = now
            return
        if self.phase == "startup":
            # Exit startup when bandwidth stops growing by >= 25% for 3 rounds.
            if bw > self._full_bw * 1.25:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3 and self._full_bw > 0:
                    self.phase = "drain"
                    self._cycle_start = now
            self._last_probe_rtt_end = now
        elif self.phase == "drain":
            rtt = self.min_rtt.current(now) or 0.05
            if now - self._cycle_start >= rtt:
                self.phase = "probe_bw"
                self._cycle_index = 0
                self._cycle_start = now
            self._last_probe_rtt_end = now

    def pacing_gain(self, now: float) -> float:
        if self.phase == "startup":
            return STARTUP_GAIN
        if self.phase == "drain":
            return 1.0 / STARTUP_GAIN
        if self.phase == "probe_rtt":
            return 0.5
        rtt = self.min_rtt.current(now) or 0.05
        if now - self._cycle_start >= rtt:
            steps = int((now - self._cycle_start) / rtt)
            self._cycle_index = (self._cycle_index + steps) % len(PROBE_GAIN_CYCLE)
            self._cycle_start = now
        return PROBE_GAIN_CYCLE[self._cycle_index]

    def bdp_bytes(self, now: float) -> Optional[float]:
        bw = self.btl_bw.current(now)
        rtt = self.min_rtt.current(now)
        if bw is None or rtt is None:
            return None
        return bw * rtt / 8.0


class BbrWindowCC(WindowCongestionControl):
    """Endhost BBR approximation: cwnd follows cwnd_gain × BDP."""

    def __init__(self, mss: int = 1500, cwnd_gain: float = 2.0, initial_cwnd_segments: int = 10) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd_gain = cwnd_gain
        self._cwnd = float(initial_cwnd_segments * mss)
        self._model = _BbrModel()
        # Delivery-rate samples are taken over an interval of a few
        # milliseconds rather than per ACK: instantaneous per-ACK rates are
        # wildly noisy (ACK compression, cumulative jumps after recovery) and
        # would inflate the windowed-max bandwidth filter.
        self._interval_start: Optional[float] = None
        self._interval_bytes = 0.0

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def phase(self) -> str:
        return self._model.phase

    def _delivery_rate_sample(self, now: float, acked_bytes: int, rtt: float) -> Optional[float]:
        if self._interval_start is None:
            self._interval_start = now
            self._interval_bytes = float(acked_bytes)
            return None
        self._interval_bytes += acked_bytes
        min_interval = max(0.25 * rtt, 0.002) if rtt > 0 else 0.002
        elapsed = now - self._interval_start
        if elapsed < min_interval:
            return None
        rate = self._interval_bytes * 8.0 / elapsed
        self._interval_start = now
        self._interval_bytes = 0.0
        return rate

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if acked_bytes <= 0:
            return
        delivery_rate = self._delivery_rate_sample(now, acked_bytes, rtt)
        self._model.update(now, delivery_rate if delivery_rate is not None else 0.0, rtt)
        bdp = self._model.bdp_bytes(now)
        if bdp is None:
            # Still learning the path: behave like slow start (capped per ACK).
            self._cwnd += min(acked_bytes, 2 * self.mss)
            return
        if self._model.phase == "probe_rtt":
            # Drain the pipe so min RTT can be re-measured.
            self._cwnd = 4.0 * self.mss
            return
        gain = STARTUP_GAIN if self._model.phase == "startup" else self.cwnd_gain
        target = max(gain * bdp, 4.0 * self.mss)
        if self._cwnd < target:
            self._cwnd = min(target, self._cwnd + acked_bytes)
        else:
            self._cwnd = target

    def on_loss(self, now: float) -> None:
        # BBR does not react to isolated losses; the model bounds the window.
        return None

    def on_timeout(self, now: float, flight_bytes: float = 0.0) -> None:
        self._cwnd = max(4.0 * self.mss, self._cwnd / 2.0)

    def pacing_rate_bps(self) -> Optional[float]:
        bw = self._model.btl_bw.current()
        if bw is None:
            return None
        return self._model.pacing_gain(0.0) * bw


class BbrRateControl(RateCongestionControl):
    """Sendbox BBR: pace the bundle at ``pacing_gain × btl_bw``."""

    def __init__(self, initial_rate_bps: float = 12e6, min_rate_bps: float = 1e6) -> None:
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        self._initial_rate = initial_rate_bps
        self.min_rate_bps = min_rate_bps
        self._model = _BbrModel()
        self._rate = initial_rate_bps

    def initial_rate_bps(self) -> float:
        return self._initial_rate

    @property
    def phase(self) -> str:
        return self._model.phase

    def on_measurement(self, measurement: BundleMeasurement) -> float:
        self._model.update(measurement.now, measurement.recv_rate, measurement.rtt)
        bw = self._model.btl_bw.current(measurement.now)
        if bw is None or bw <= 0:
            return self._rate
        gain = self._model.pacing_gain(measurement.now)
        self._rate = max(gain * bw, self.min_rate_bps)
        return self._rate

    def on_no_feedback(self, now: float) -> Optional[float]:
        return None
