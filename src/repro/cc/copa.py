"""Copa congestion control, adapted to bundle-level rate control.

Copa [Arun & Balakrishnan, NSDI 2018] targets a sending rate of
``1 / (delta * dq)`` packets per second, where ``dq`` is the queueing delay
(standing RTT minus minimum RTT).  The window moves toward the target with a
velocity term that doubles while the direction of adjustment is consistent.

Copa is the default algorithm at the sendbox in the paper's evaluation
(§7.1): it keeps the bottleneck queue small (so the queue moves to the
sendbox) while staying at the bundle's fair share of bottleneck bandwidth.
This implementation keeps Copa's internal state as a congestion window (in
packets) and converts it to a bundle rate using the standing RTT, which is
how the prototype drives the token-bucket qdisc (effective rate =
cwnd / RTT, §6.1).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import BundleMeasurement, RateCongestionControl
from repro.util.windowed import MinFilter


class CopaRateControl(RateCongestionControl):
    """Copa adapted as a bundle rate controller."""

    def __init__(
        self,
        delta: float = 0.5,
        mss: int = 1500,
        initial_rate_bps: float = 12e6,
        min_cwnd_packets: float = 4.0,
        standing_window_s: float = 0.1,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.delta = delta
        self.mss = mss
        self._initial_rate = initial_rate_bps
        self.min_cwnd_packets = min_cwnd_packets
        # Standing RTT: the minimum RTT over a short recent window, which
        # filters out transient spikes but tracks the current standing queue.
        self._standing_rtt = MinFilter(standing_window_s)
        self._cwnd_packets = 10.0
        self._velocity = 1.0
        self._direction = 0
        self._direction_changes = 0
        self._last_direction_time = 0.0
        self._initialized = False

    def initial_rate_bps(self) -> float:
        return self._initial_rate

    @property
    def cwnd_packets(self) -> float:
        return self._cwnd_packets

    @property
    def velocity(self) -> float:
        return self._velocity

    def _update_velocity(self, now: float, direction: int, rtt: float) -> None:
        if direction == self._direction:
            # Copa doubles the velocity only once the direction has stayed the
            # same for several RTTs; reacting faster than that amplifies the
            # feedback delay of the epoch measurements into oscillation.
            if now - self._last_direction_time >= 3.0 * rtt:
                self._velocity = min(self._velocity * 2.0, 64.0)
                self._last_direction_time = now
        else:
            self._velocity = 1.0
            self._direction = direction
            self._last_direction_time = now

    def on_measurement(self, measurement: BundleMeasurement) -> float:
        now = measurement.now
        rtt = measurement.rtt
        min_rtt = measurement.min_rtt
        if rtt <= 0 or min_rtt <= 0:
            return self._current_rate(rtt if rtt > 0 else 0.05)
        if not self._initialized:
            # Seed the window from the initial rate so Copa does not start
            # from a tiny window on a fat pipe.
            self._cwnd_packets = max(
                self.min_cwnd_packets, self._initial_rate * rtt / (8.0 * self.mss)
            )
            self._initialized = True
        standing = self._standing_rtt.update(now, rtt)
        queueing_delay = max(standing - min_rtt, 0.0)

        if queueing_delay <= 1e-6:
            target_rate_pps = float("inf")
        else:
            target_rate_pps = 1.0 / (self.delta * queueing_delay)
        current_rate_pps = self._cwnd_packets / standing

        acked_packets = max(measurement.acked_bytes / self.mss, 1.0)
        # Cap the per-update step: the bundle controller runs every 10 ms but
        # measurements lag by roughly an RTT, so unbounded per-tick steps turn
        # that delay into oscillation.
        step = min(
            (self._velocity / (self.delta * self._cwnd_packets)) * acked_packets,
            0.05 * self._cwnd_packets + 1.0,
        )
        if current_rate_pps <= target_rate_pps:
            self._update_velocity(now, +1, standing)
            self._cwnd_packets += step
        else:
            self._update_velocity(now, -1, standing)
            self._cwnd_packets -= step
        if measurement.loss_detected:
            # Copa reacts mildly to loss (it is not loss-based), but a missing
            # epoch indicates the queue overflowed: step the window down.
            self._cwnd_packets *= 0.9
        self._cwnd_packets = max(self._cwnd_packets, self.min_cwnd_packets)
        # The qdisc enforces "cwnd worth of data per current RTT" (§6.1): using
        # the *current* RTT rather than the standing minimum gives the loop a
        # self-damping property — as the queue (and thus the RTT) grows, the
        # enforced rate for a fixed window automatically falls.
        return self._current_rate(rtt)

    def _current_rate(self, rtt: float) -> float:
        rtt = max(rtt, 1e-3)
        return self._cwnd_packets * self.mss * 8.0 / rtt

    def on_no_feedback(self, now: float) -> Optional[float]:
        return None
