"""Nimbus "BasicDelay" rate control.

BasicDelay is the simple delay-targeting rate controller from the Nimbus
paper [Goyal et al.]: hold the self-inflicted queueing delay near a small
target (a fraction of the propagation RTT) while matching the observed
receive rate, so the bottleneck stays fully utilized with a small standing
queue.  Figure 14 shows it providing benefits comparable to Copa when used
as Bundler's sendbox algorithm.

Control law (per measurement interval)::

    qdelay      = rtt - min_rtt
    target      = max(target_fraction * min_rtt, min_target)
    mu_hat      = windowed max of the receive rate   (bottleneck estimate)
    rate        = recv_rate + alpha * mu_hat * (target - qdelay) / target

clamped to ``[min_rate, 2 * mu_hat]``.  When the queue is above target the
rate drops below the receive rate and the queue drains; when below target it
rises above the receive rate and the queue grows toward the target.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import BundleMeasurement, RateCongestionControl
from repro.util.windowed import MaxFilter


class BasicDelayRateControl(RateCongestionControl):
    """Delay-threshold rate controller modelled on Nimbus's BasicDelay."""

    def __init__(
        self,
        alpha: float = 0.8,
        target_fraction: float = 0.1,
        min_target_s: float = 0.002,
        initial_rate_bps: float = 12e6,
        min_rate_bps: float = 0.5e6,
        bw_window_s: float = 5.0,
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0.0 < target_fraction < 1.0:
            raise ValueError("target_fraction must be in (0, 1)")
        self.alpha = alpha
        self.target_fraction = target_fraction
        self.min_target_s = min_target_s
        self._initial_rate = initial_rate_bps
        self.min_rate_bps = min_rate_bps
        self._mu_hat = MaxFilter(bw_window_s)
        self._rate = initial_rate_bps

    def initial_rate_bps(self) -> float:
        return self._initial_rate

    @property
    def bottleneck_estimate_bps(self) -> Optional[float]:
        """Current estimate of the bottleneck rate (windowed max receive rate)."""
        return self._mu_hat.current()

    def target_delay(self, min_rtt: float) -> float:
        """Queueing-delay target for a path with the given propagation RTT."""
        return max(self.target_fraction * min_rtt, self.min_target_s)

    def on_measurement(self, measurement: BundleMeasurement) -> float:
        now = measurement.now
        if measurement.recv_rate > 0:
            self._mu_hat.update(now, measurement.recv_rate)
        mu = self._mu_hat.current(now)
        if mu is None or mu <= 0 or measurement.rtt <= 0:
            return self._rate
        qdelay = measurement.queue_delay
        target = self.target_delay(measurement.min_rtt)
        # Clamp the normalized error: far above target the controller should
        # drain firmly but not collapse to the minimum rate (which would
        # starve its own measurements), and far below target it should not
        # overshoot past the bottleneck estimate.
        error = max(min((target - qdelay) / target, 1.0), -0.5)
        rate = measurement.recv_rate + self.alpha * mu * error
        self._rate = min(max(rate, self.min_rate_bps), 2.0 * mu)
        return self._rate

    def on_no_feedback(self, now: float) -> Optional[float]:
        return None
