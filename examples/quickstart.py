"""Quickstart: compare Status Quo with Bundler + SFQ on the paper's workload.

Runs the §7.1 scenario (scaled down) twice — once without Bundler and once
with it — and prints the median and tail flow-completion-time slowdowns,
reproducing the headline comparison of Figure 9.

Run with::

    python examples/quickstart.py
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.metrics.reporting import Table
from repro.metrics.stats import improvement


def main() -> None:
    common = dict(
        bottleneck_mbps=24.0,   # paper: 96 Mbit/s (scaled down so this runs in seconds)
        rtt_ms=50.0,
        load_fraction=0.875,    # paper: 84 Mbit/s offered against 96 Mbit/s
        duration_s=10.0,
        seed=1,
    )
    table = Table(["configuration", "median slowdown", "p99 slowdown", "flows"],
                  title="Bundler quickstart (Figure 9, scaled down)")
    medians = {}
    for mode in ("status_quo", "bundler_sfq"):
        result = run_scenario(ScenarioConfig(mode=mode, **common))
        analysis = result.fct_analysis()
        medians[mode] = analysis.median_slowdown()
        table.add_row(mode, analysis.median_slowdown(), analysis.percentile_slowdown(99), len(analysis))
    print(table)
    gain = improvement(medians["status_quo"], medians["bundler_sfq"]) * 100
    print(f"\nBundler with SFQ lowers the median slowdown by {gain:.0f}% "
          f"(the paper reports 28% at full scale).")


if __name__ == "__main__":
    main()
