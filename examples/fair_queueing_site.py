"""Build a site-to-site deployment by hand and watch the queue move.

This example uses the lower-level API directly (topology builder, Bundler
installer, transports) instead of the pre-packaged scenarios: it sets up two
sites, installs a Bundler pair, runs a couple of bulk transfers alongside a
latency-sensitive probe, and reports where the queueing delay lives — the
Figure 2 experiment, plus the latency benefit SFQ gives the probe.

Run with::

    python examples/fair_queueing_site.py
"""

from repro.core import BundlerConfig, install_bundler
from repro.net import Simulator
from repro.net.topology import build_site_to_site
from repro.net.trace import percentile
from repro.transport.flow import TcpFlow
from repro.workload.generators import ClosedLoopProbes


def run(with_bundler: bool) -> dict:
    sim = Simulator()
    topo = build_site_to_site(sim, bottleneck_mbps=24.0, rtt_ms=50.0, num_servers=3, num_clients=1)
    if with_bundler:
        install_bundler(topo, BundlerConfig(sendbox_cc="copa", scheduler="sfq",
                                            initial_rate_bps=12e6))
    # Two bulk transfers (the traffic an operator wants to deprioritize) ...
    bulk = [
        TcpFlow(sim, topo.packet_factory, topo.servers[i], topo.clients[0], size_bytes=None).start()
        for i in range(2)
    ]
    # ... and a latency-sensitive request/response session.
    probes = ClosedLoopProbes(sim, topo.packet_factory, topo.servers[2], topo.clients[0], count=2).start()
    sim.run(until=20.0)
    for flow in bulk:
        flow.stop()
    probe_rtts = [r * 1e3 for r in probes.all_rtts()]
    return {
        "bottleneck_queue_ms": (topo.bottleneck_link.monitor.delay.between(5, 20).mean() or 0) * 1e3,
        "sendbox_queue_ms": (topo.sendbox_link.monitor.delay.between(5, 20).mean() or 0) * 1e3,
        "probe_median_rtt_ms": percentile(probe_rtts, 50) if probe_rtts else float("nan"),
        "bulk_throughput_mbps": topo.bottleneck_link.rate_monitor.mean_bps(5, 20) / 1e6,
    }


def main() -> None:
    for label, with_bundler in (("status quo", False), ("bundler+sfq", True)):
        stats = run(with_bundler)
        print(
            f"{label:12s}: bottleneck queue={stats['bottleneck_queue_ms']:6.1f} ms  "
            f"sendbox queue={stats['sendbox_queue_ms']:6.1f} ms  "
            f"probe median RTT={stats['probe_median_rtt_ms']:6.1f} ms  "
            f"bulk throughput={stats['bulk_throughput_mbps']:5.1f} Mbit/s"
        )
    print("\nWith Bundler the standing queue sits at the sendbox, where SFQ keeps the "
          "probe's packets from waiting behind the bulk transfers.")


if __name__ == "__main__":
    main()
