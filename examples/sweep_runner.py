"""Sweep-runner example: a figure's worth of runs, in parallel, cached.

Expands a declarative sweep of the Figure 9 scenario (2 modes x 2 bottleneck
rates x 2 seeds), executes it on a 2-process worker pool, and prints a
per-cell table plus the cache summary.  Run it twice: the second invocation
is served entirely from ``.repro-cache/`` and finishes instantly.

Run with::

    python examples/sweep_runner.py

The same sweep from the command line (the example reuses the CLI's smoke
spec, so cache entries are shared between the two)::

    python -m repro.runner sweep --smoke --workers 2
"""

from repro.metrics.reporting import format_aggregate_cells, format_run_results
from repro.runner import ResultCache, SweepSpec, aggregate_outcome, run_spec
from repro.runner.cli import SMOKE_SPEC


def main() -> None:
    # Same declarative spec as `python -m repro.runner sweep --smoke`, so
    # cache entries really are shared between the example and the CLI.
    sweep = SweepSpec.from_dict(SMOKE_SPEC)
    outcome = run_spec(sweep, workers=2, cache=ResultCache())
    print(
        format_run_results(
            outcome.results,
            title="Figure 9 sweep (scaled down)",
            metrics=["median_slowdown", "p99_slowdown", "completed"],
        )
    )
    print()
    # Collapse the two seeds of each (mode, rate) cell into mean ± 95% CI —
    # the same view as `python -m repro.runner report --aggregate`.
    print(
        format_aggregate_cells(
            aggregate_outcome(outcome),
            title="Aggregated across seeds (mean ± 95% CI)",
            metrics=["median_slowdown", "p99_slowdown"],
        )
    )
    print()
    print(outcome.summary())


if __name__ == "__main__":
    main()
