"""Sweep-runner example: a figure's worth of runs, in parallel, cached.

Expands a declarative sweep of the Figure 9 scenario (2 modes x 2 bottleneck
rates x 2 seeds), executes it on the 2-process pool backend, and prints a
per-cell table, the cross-seed aggregate, a plot-ready CSV export, and the
cache summary.  Run it twice: the second invocation is served entirely from
``.repro-cache/`` and finishes instantly.

The sweep/aggregate/export API all comes from :mod:`repro.api` — the
stable, typed facade.  The two non-facade imports are presentation-layer
helpers (:mod:`repro.metrics.reporting` table formatters) and the CLI's
``SMOKE_SPEC`` constant, reused so the example shares cache entries with
``sweep --smoke``.

Run with::

    python examples/sweep_runner.py

The same sweep from the command line (the example reuses the CLI's smoke
spec, so cache entries are shared between the two)::

    python -m repro.runner sweep --smoke --workers 2 --backend process
"""

from repro import api
from repro.metrics.reporting import format_aggregate_cells, format_run_results
from repro.runner.cli import SMOKE_SPEC


def main() -> None:
    # Same declarative spec as `python -m repro.runner sweep --smoke`, so
    # cache entries really are shared between the example and the CLI.
    sweep = api.SweepSpec.from_dict(SMOKE_SPEC)
    outcome = api.run_spec(
        sweep, workers=2, cache=api.ResultCache(), backend="process"
    )
    print(
        format_run_results(
            outcome.results,
            title="Figure 9 sweep (scaled down)",
            metrics=["median_slowdown", "p99_slowdown", "completed"],
        )
    )
    print()
    # Collapse the two seeds of each (mode, rate) cell into mean ± 95% CI —
    # the same view as `python -m repro.runner report --aggregate`.
    cells = api.aggregate_outcome(outcome)
    print(
        format_aggregate_cells(
            cells,
            title="Aggregated across seeds (mean ± 95% CI)",
            metrics=["median_slowdown", "p99_slowdown"],
        )
    )
    print()
    # The same aggregate as a schema-annotated long-format CSV — what
    # `repro-runner report --aggregate --format csv` emits; pandas reads it
    # directly (one row per cell x metric, with unit and direction columns).
    registry = api.load_builtin_scenarios()
    print("Plot-ready CSV (first 5 lines):")
    for line in api.export_aggregates(cells, "csv", registry=registry).splitlines()[:5]:
        print(f"  {line}")
    print()
    print(outcome.summary())


if __name__ == "__main__":
    main()
