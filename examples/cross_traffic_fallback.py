"""Watch Bundler detect buffer-filling cross traffic and get out of the way.

Reproduces the Figure 10 storyline: the bundle has the bottleneck to itself,
then a backlogged Cubic flow from outside the bundle arrives, then it leaves
and is replaced by short-flow cross traffic.  The script prints, per phase,
the in-network queueing delay, the bundle's short-flow completion times, and
how long the controller spent in pass-through mode.

Run with::

    python examples/cross_traffic_fallback.py
"""

from repro.experiments import PhasedConfig, run_phased_cross_traffic


def main() -> None:
    config = PhasedConfig(
        bottleneck_mbps=24.0,
        rtt_ms=50.0,
        phase_duration_s=12.0,
        bundle_load_fraction=0.6,
        cross_load_fraction=0.3,
        cross_bulk_flows=1,
    )
    result = run_phased_cross_traffic(config)
    names = ("no cross traffic", "buffer-filling cross traffic", "non-buffer-filling cross traffic")
    print("phase                                median slowdown   in-network queue")
    for i, name in enumerate(names):
        fct = result.phase_fct(i)
        median = fct.median_slowdown() if len(fct) else float("nan")
        print(f"{i}: {name:32s} {median:10.2f}        {result.phase_queue_delay_mean(i) * 1e3:7.1f} ms")
    total = result.phase_boundaries[-1]
    print(f"\ntime spent letting traffic pass (Nimbus detected elastic cross traffic): "
          f"{result.pass_through_seconds:.1f} s of {total:.0f} s")
    print("Expected shape: phase 0 fast with a tiny queue, phase 1 reverts toward status-quo "
          "behaviour while the detector holds, phase 2 recovers once the buffer-filler leaves.")


if __name__ == "__main__":
    main()
