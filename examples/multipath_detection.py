"""Demonstrate the out-of-order-epoch multipath imbalance detector (§5.2, §7.6).

Runs the same bundle over a single-path WAN and over a 4-way load-balanced
WAN with imbalanced per-path delays, and prints the fraction of congestion
ACKs that arrived out of order plus the controller's resulting mode.

Run with::

    python examples/multipath_detection.py
"""

from repro.experiments import run_multipath_point


def main() -> None:
    print("paths  out-of-order fraction  detector  final controller mode")
    for paths in (1, 2, 4, 8):
        point = run_multipath_point(num_paths=paths, bottleneck_mbps=24.0, rtt_ms=50.0,
                                    duration_s=10.0)
        print(
            f"{paths:5d}  {point.out_of_order_fraction * 100:20.2f}%  "
            f"{'triggered' if point.detector_triggered else 'quiet':9s}  {point.final_mode}"
        )
    print("\nThe paper reports <=0.4% out-of-order measurements on single paths and >=20% with "
          "2-32 imbalanced paths, so a 5% threshold cleanly separates the regimes; when it "
          "trips, Bundler disables its rate control (status-quo behaviour) rather than "
          "reacting to meaningless aggregate delay measurements.")


if __name__ == "__main__":
    main()
