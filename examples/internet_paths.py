"""Emulated version of the paper's real-Internet-paths deployment (§8, Figure 16).

One sending site pushes ten closed-loop 40-byte request/response probes and a
handful of backlogged bulk flows toward several receiving regions, each with
its own base RTT and an egress rate limit standing in for the cloud
provider's rate limiter.  The script prints, per region, the probe RTT
distribution for Base / Status Quo / Bundler.

Run with::

    python examples/internet_paths.py
"""

from repro.experiments import median_latency_reduction, run_internet_paths_study


def main() -> None:
    regions = {"south_carolina": 30.0, "oregon": 40.0, "frankfurt": 110.0}
    results = run_internet_paths_study(
        regions=regions,
        egress_limit_mbps=24.0,
        duration_s=15.0,
        num_probes=10,
        num_bulk_flows=4,
    )
    print("region           configuration   median RTT    p99 RTT   bulk throughput")
    for r in results:
        print(
            f"{r.region:15s}  {r.configuration:12s} {r.median_probe_rtt_ms():9.1f} ms "
            f"{r.p99_probe_rtt_ms():9.1f} ms  {r.bulk_throughput_mbps:7.1f} Mbit/s"
        )
    print(f"\nOverall median probe-RTT reduction from Bundler: "
          f"{median_latency_reduction(results) * 100:.0f}%  (paper: 57%)")


if __name__ == "__main__":
    main()
