"""Trace-workload example: generate a diurnal trace, replay it, export.

The full loop of the trace subsystem (``docs/workloads.md``):

1. **Generate** a diurnal (Markov-modulated) traffic trace to a file and
   print its content digest — the identity the cache keys on.
2. **Replay** it through a status-quo vs. Bundler sweep: the ``trace``
   parameter is a file spec, so the cells are digest-addressed — moving
   or renaming the file would not invalidate the cache, editing it would.
3. **Aggregate and export** the results as a plot-ready long-format CSV.

Run with::

    python examples/trace_workloads.py

Everything is cached under ``.repro-cache/``; a second run is served
entirely from cache.  The same trace from the command line::

    python -m repro.runner trace generate --generator diurnal \
        -p base_rate_per_s=300 --seed 1 -o diurnal.jsonl.gz
    python -m repro.runner trace inspect diurnal.jsonl.gz
"""

import os
import tempfile

from repro import api
from repro.metrics.reporting import format_aggregate_cells

#: The diurnal trace: two compressed "days" of load cycling quiet → peak,
#: offered by 4 servers.  ~7.5 Mbit/s mean against a 12 Mbit/s bottleneck.
TRACE_SPEC = {
    "generator": "diurnal",
    "params": {
        "base_rate_per_s": 300.0,
        "period_s": 4.0,
        "profile": [0.4, 1.0, 1.7, 1.0],
        "horizon_s": 8.0,
        "num_src": 4,
    },
}


def main() -> None:
    # 1. Generate the trace to a file (streaming writer, gzip by extension).
    out_dir = tempfile.mkdtemp(prefix="repro-trace-")
    path = os.path.join(out_dir, "diurnal.jsonl.gz")
    digest = api.write_trace(path, api.generate_trace(TRACE_SPEC, seed=1))
    print(f"generated {path}")
    print(f"  {digest.events} events, {digest.flow_bytes} flow bytes, digest {digest.id}")
    print()

    # 2. Replay.  Two spellings of the trace parameter:
    #    * the generator spec itself — each seed samples a fresh trace, so
    #      sweeping seeds measures variability across diurnal draws;
    #    * the file path — the engine keys those cells on the trace's
    #      *digest* (the exact content above), so every seed replays the
    #      identical trace and the spelling of the path never mints a key.
    outcome = api.run_sweep(
        [
            api.RunSpec(
                "trace_diurnal_load", params={"trace": TRACE_SPEC, "mode": mode}, seed=seed
            )
            for mode in ("status_quo", "bundler_sfq")
            for seed in (1, 2)
        ]
        + [api.RunSpec("trace_diurnal_load", params={"trace": path, "mode": "bundler_sfq"})],
        workers=2,
        backend="process",
    )

    # 3. Aggregate across seeds and export the long table.
    cells = api.aggregate_outcome(outcome)
    print(
        format_aggregate_cells(
            cells,
            title="Diurnal trace replay (mean ± 95% CI across seeds)",
            metrics=["median_slowdown", "p99_slowdown", "bottleneck_drops"],
        )
    )
    print()
    registry = api.load_builtin_scenarios()
    print("Plot-ready CSV (first 5 lines):")
    for line in api.export_aggregates(cells, "csv", registry=registry).splitlines()[:5]:
        print(f"  {line}")
    print()
    print(outcome.summary())


if __name__ == "__main__":
    main()
