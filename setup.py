"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` also works on environments whose
setuptools predates PEP 660 editable-install support (legacy
``setup.py develop`` path, e.g. offline machines without the ``wheel``
package).
"""

from setuptools import setup

setup()
