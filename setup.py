"""Setuptools configuration.

Metadata stays here (rather than in ``pyproject.toml``'s ``[project]``
table) so that ``pip install -e .`` also works on environments whose
setuptools predates PEP 621/660 (legacy ``setup.py develop`` path, e.g.
offline machines without the ``wheel`` package); ``pyproject.toml`` carries
only the build-system pin and tool configuration.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bundler",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of 'Site-to-site internet traffic control' (Bundler, "
        "EuroSys 2021): discrete-event simulator, experiments, and a "
        "parallel scenario-sweep runner"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro-runner = repro.runner.cli:main",
        ],
    },
)
